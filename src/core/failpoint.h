#pragma once
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/core/status.h"

/// Deterministic fault injection for the persistence/serving/training seams
/// (DESIGN.md §10). A failpoint is a named hook compiled into the binary
/// only when the build sets -DADPA_FAILPOINTS=ON (cmake option →
/// ADPA_ENABLE_FAILPOINTS); in a plain Release build the macros expand to
/// nothing and the library contains no failpoint symbols at all — zero
/// overhead is part of the contract, not an optimization.
///
/// When compiled in, failpoints stay dormant until activated at runtime,
/// either programmatically (tests call failpoint::Configure) or through the
/// ADPA_FAILPOINTS environment variable (tools/crash_harness.sh drives
/// child processes this way):
///
///   ADPA_FAILPOINTS='checkpoint.save=error;trainer.epoch=crash@8'
///
/// Spec grammar, per `;`-separated entry:
///
///   <name>=<action>[@<trigger>]
///   action  := error[(message)] | crash[(exit_code)] | delay(ms) | off
///   trigger := N        fire on exactly the N-th hit (1-based), once
///            | 1inN     fire on every N-th hit (N, 2N, 3N, ...)
///   (no trigger: fire on every hit)
///
/// Triggers count hits with a per-point counter under a mutex —
/// deterministic by construction, never wall-clock or RNG driven — so a
/// crash scheduled for "the 8th epoch" lands on the 8th epoch every run.
///
/// Actions:
///   error  the hook evaluates to Status::Internal (callers propagate or
///          degrade exactly as they would for a real I/O failure)
///   crash  _exit(exit_code) on the spot — no atexit handlers, no stream
///          flushing — simulating SIGKILL/power loss (default code 42)
///   delay  nanosleep for the given milliseconds, then proceed (for queue
///          deadline/overload testing)

#if defined(ADPA_ENABLE_FAILPOINTS)
#define ADPA_FAILPOINTS_ENABLED 1
#else
#define ADPA_FAILPOINTS_ENABLED 0
#endif

namespace adpa::failpoint {

/// True when the failpoint hooks are compiled into this binary.
constexpr bool CompiledIn() { return ADPA_FAILPOINTS_ENABLED == 1; }

/// Every failpoint name wired into the library, with the seam it guards.
/// Configure rejects names outside this list (catches typos in env specs).
std::vector<std::pair<std::string, std::string>> Catalog();

#if ADPA_FAILPOINTS_ENABLED

/// Activates one failpoint from an action spec (grammar above, without the
/// `name=` prefix), e.g. Configure("checkpoint.save", "error@2").
/// InvalidArgument on unknown names or unparsable specs.
Status Configure(const std::string& name, const std::string& spec);

/// Parses a full `name=action;name=action` spec string (the
/// ADPA_FAILPOINTS env format). Empty entries are ignored.
Status ConfigureFromString(const std::string& specs);

/// Deactivates every failpoint and resets all hit counters.
void ClearAll();

/// Hits recorded for `name` since the last ClearAll (0 if never configured;
/// dormant points do not count hits).
uint64_t HitCount(const std::string& name);

/// The hook the macros expand to: records a hit and performs the configured
/// action. OK when the point is dormant or the trigger does not fire.
Status Hit(const char* name);

#else  // !ADPA_FAILPOINTS_ENABLED

/// Compiled-out stubs: configuration is refused loudly (a test that needs
/// failpoints must skip, not silently pass), everything else is a no-op.
inline Status Configure(const std::string&, const std::string&) {
  return Status::FailedPrecondition(
      "failpoints are compiled out; build with -DADPA_FAILPOINTS=ON");
}
inline Status ConfigureFromString(const std::string&) {
  return Status::FailedPrecondition(
      "failpoints are compiled out; build with -DADPA_FAILPOINTS=ON");
}
inline void ClearAll() {}
inline uint64_t HitCount(const std::string&) { return 0; }
inline Status Hit(const char*) { return Status::OK(); }

#endif  // ADPA_FAILPOINTS_ENABLED

}  // namespace adpa::failpoint

#if ADPA_FAILPOINTS_ENABLED

/// Statement form for Status/Result-returning functions: propagates an
/// injected error as if the next operation had failed.
#define ADPA_FAILPOINT(name)                                        \
  do {                                                              \
    ::adpa::Status _adpa_fp = ::adpa::failpoint::Hit(name);         \
    if (!_adpa_fp.ok()) return _adpa_fp;                            \
  } while (false)

/// Expression form for call sites that latch or degrade instead of
/// returning (BinaryWriter::WriteBytes, cache load-or-compute).
#define ADPA_FAILPOINT_STATUS(name) ::adpa::failpoint::Hit(name)

#else  // !ADPA_FAILPOINTS_ENABLED

#define ADPA_FAILPOINT(name) \
  do {                       \
  } while (false)
#define ADPA_FAILPOINT_STATUS(name) ::adpa::Status::OK()

#endif  // ADPA_FAILPOINTS_ENABLED
