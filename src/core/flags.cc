#include "src/core/flags.h"

#include <cstdlib>
#include <iostream>

namespace adpa {

bool Flags::Parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      std::cerr << "Unexpected positional argument: " << arg << "\n";
      return false;
    }
    arg = arg.substr(2);
    const size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "true";  // bare flag, e.g. --verbose
    }
  }
  return true;
}

std::string Flags::GetString(const std::string& name,
                             const std::string& default_value) const {
  auto it = values_.find(name);
  return it == values_.end() ? default_value : it->second;
}

int64_t Flags::GetInt(const std::string& name, int64_t default_value) const {
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  char* end = nullptr;
  const int64_t parsed = std::strtoll(it->second.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') {
    std::cerr << "Warning: flag --" << name << "=" << it->second
              << " is not an integer; using default " << default_value << "\n";
    return default_value;
  }
  return parsed;
}

double Flags::GetDouble(const std::string& name, double default_value) const {
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  char* end = nullptr;
  const double parsed = std::strtod(it->second.c_str(), &end);
  if (end == nullptr || *end != '\0') {
    std::cerr << "Warning: flag --" << name << "=" << it->second
              << " is not a number; using default " << default_value << "\n";
    return default_value;
  }
  return parsed;
}

bool Flags::GetBool(const std::string& name, bool default_value) const {
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

bool Flags::Has(const std::string& name) const {
  return values_.count(name) > 0;
}

}  // namespace adpa
