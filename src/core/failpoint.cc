#include "src/core/failpoint.h"

#include <algorithm>

namespace adpa::failpoint {

std::vector<std::pair<std::string, std::string>> Catalog() {
  // Keep in sync with the ADPA_FAILPOINT call sites; failpoint_test
  // cross-checks that Configure accepts every entry. DESIGN.md §10 carries
  // the same table with the recovery behavior per seam.
  return {
      {"binary.write", "BinaryWriter::WriteBytes, before the stream write"},
      {"binary.read", "BinaryReader::ReadBytes, before the stream read"},
      {"checkpoint.save", "SaveCheckpointToStream, before serialization"},
      {"checkpoint.load", "TryLoadCheckpointFromStream, before parsing"},
      {"cache.save", "SavePropagationCacheToStream, before serialization"},
      {"cache.load", "TryLoadPropagationCacheFromStream, before parsing"},
      {"atomic_file.open", "AtomicFileWriter::Commit, before the temp open"},
      {"atomic_file.write.partial",
       "AtomicFileWriter::Commit, after half the payload is on disk"},
      {"atomic_file.before_rename",
       "AtomicFileWriter::Commit, temp complete but not yet renamed"},
      {"atomic_file.after_rename",
       "AtomicFileWriter::Commit, after the atomic rename landed"},
      {"dataset.load", "LoadDatasetFromStream, before parsing"},
      {"trainer.epoch", "TrainModelResumable, top of each epoch iteration"},
      {"trainer.snapshot", "TrainModelResumable, before a periodic snapshot"},
      {"serve.cache.load",
       "InferenceSession::Create, before the propagation cache read"},
      {"serve.cache.write",
       "InferenceSession::Create, before the propagation cache rewrite"},
      {"net.accept", "net::AcceptConnection, before the accept syscall"},
      {"net.accept.emfile",
       "net::AcceptConnection, reports fd exhaustion as if accept hit "
       "EMFILE"},
      {"net.read", "net::ReadSome, before the recv syscall"},
      {"net.read.short", "net::ReadSome, caps the read at 1 byte"},
      {"net.write", "net::WriteSome, before the send syscall"},
      {"net.write.short", "net::WriteSome, caps the write at 1 byte"},
      {"net.reload.load",
       "SessionRegistry::Reload, before the checkpoint read"},
  };
}

}  // namespace adpa::failpoint

#if ADPA_FAILPOINTS_ENABLED

#include <time.h>    // nanosleep: POSIX sleep without <thread> (lint)
#include <unistd.h>  // _exit: die without flushing, like a power cut

#include <cstdio>
#include <cstdlib>
#include <map>

#include "src/core/chaos.h"
#include "src/core/mutex.h"
#include "src/core/thread_annotations.h"

namespace adpa::failpoint {
namespace {

enum class Action { kError, kCrash, kDelay };

struct PointConfig {
  Action action = Action::kError;
  std::string message;     // extra detail for kError
  int64_t delay_ms = 0;    // kDelay
  int exit_code = 42;      // kCrash
  uint64_t nth = 0;        // fire only on hit N (1-based); 0 = every hit
  uint64_t one_in = 0;     // fire on hits N, 2N, ...; 0 = every hit
  uint64_t hits = 0;
};

struct Registry {
  Mutex mu;
  std::map<std::string, PointConfig> points ADPA_GUARDED_BY(mu);
  bool env_loaded ADPA_GUARDED_BY(mu) = false;
};

Registry& GetRegistry() {
  static Registry* registry = new Registry();  // leaked: outlives all users
  return *registry;
}

bool KnownName(const std::string& name) {
  const auto catalog = Catalog();
  return std::any_of(catalog.begin(), catalog.end(),
                     [&](const auto& entry) { return entry.first == name; });
}

bool AllDigits(const std::string& text) {
  return !text.empty() &&
         text.find_first_not_of("0123456789") == std::string::npos;
}

/// Parses "action[(arg)][@trigger]" into `config`.
Status ParseSpec(const std::string& name, const std::string& spec,
                 PointConfig* config) {
  std::string body = spec;
  const size_t at = body.rfind('@');
  std::string trigger;
  if (at != std::string::npos) {
    trigger = body.substr(at + 1);
    body = body.substr(0, at);
    if (trigger.empty()) {
      return Status::InvalidArgument("failpoint " + name +
                                     ": '@' with no trigger (want @N or "
                                     "@1inN)");
    }
  }
  std::string action = body, arg;
  const size_t paren = body.find('(');
  if (paren != std::string::npos) {
    if (body.back() != ')') {
      return Status::InvalidArgument("failpoint " + name +
                                     ": unterminated '(' in action \"" +
                                     spec + "\"");
    }
    action = body.substr(0, paren);
    arg = body.substr(paren + 1, body.size() - paren - 2);
  }
  if (action == "error") {
    config->action = Action::kError;
    config->message = arg;
  } else if (action == "crash") {
    config->action = Action::kCrash;
    if (!arg.empty()) {
      if (!AllDigits(arg)) {
        return Status::InvalidArgument(
            "failpoint " + name + ": crash exit code must be a non-negative "
            "integer, got \"" + arg + "\"");
      }
      config->exit_code = std::atoi(arg.c_str());
    }
  } else if (action == "delay") {
    config->action = Action::kDelay;
    if (!AllDigits(arg)) {
      return Status::InvalidArgument(
          "failpoint " + name + ": delay needs milliseconds in [0, 60000]");
    }
    config->delay_ms = std::atoll(arg.c_str());
    if (config->delay_ms > 60'000) {
      return Status::InvalidArgument(
          "failpoint " + name + ": delay needs milliseconds in [0, 60000]");
    }
  } else {
    return Status::InvalidArgument("failpoint " + name +
                                   ": unknown action \"" + action +
                                   "\" (want error|crash|delay|off)");
  }
  if (!trigger.empty()) {
    const bool one_in = trigger.rfind("1in", 0) == 0;
    const std::string count = one_in ? trigger.substr(3) : trigger;
    if (count.empty() ||
        count.find_first_not_of("0123456789") != std::string::npos) {
      return Status::InvalidArgument("failpoint " + name +
                                     ": bad trigger \"@" + trigger +
                                     "\" (want @N or @1inN)");
    }
    const uint64_t n = std::strtoull(count.c_str(), nullptr, 10);
    if (n == 0) {
      return Status::InvalidArgument("failpoint " + name +
                                     ": trigger count must be positive");
    }
    (one_in ? config->one_in : config->nth) = n;
  }
  return Status::OK();
}

Status ConfigureLocked(Registry& registry, const std::string& name,
                       const std::string& spec)
    ADPA_REQUIRES(registry.mu) {
  if (!KnownName(name)) {
    return Status::InvalidArgument(
        "unknown failpoint \"" + name +
        "\" (see adpa::failpoint::Catalog for the registered names)");
  }
  if (spec == "off") {
    registry.points.erase(name);
    return Status::OK();
  }
  PointConfig config;
  ADPA_RETURN_IF_ERROR(ParseSpec(name, spec, &config));
  registry.points[name] = config;
  return Status::OK();
}

Status ConfigureFromStringLocked(Registry& registry,
                                 const std::string& specs)
    ADPA_REQUIRES(registry.mu) {
  size_t start = 0;
  while (start <= specs.size()) {
    size_t end = specs.find(';', start);
    if (end == std::string::npos) end = specs.size();
    const std::string entry = specs.substr(start, end - start);
    start = end + 1;
    if (entry.empty()) continue;
    const size_t eq = entry.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("failpoint spec entry \"" + entry +
                                     "\" has no '=' (want name=action)");
    }
    ADPA_RETURN_IF_ERROR(
        ConfigureLocked(registry, entry.substr(0, eq), entry.substr(eq + 1)));
  }
  return Status::OK();
}

/// One-time pickup of the ADPA_FAILPOINTS env var. A malformed spec is a
/// hard abort: a crash harness that silently runs with no faults armed
/// would report vacuous green.
void LoadEnvLocked(Registry& registry) ADPA_REQUIRES(registry.mu) {
  if (registry.env_loaded) return;
  registry.env_loaded = true;
  // Chaos schedule first, explicit ADPA_FAILPOINTS second: a hand-written
  // entry overrides whatever the schedule armed for the same point.
  const char* chaos_env = std::getenv("ADPA_CHAOS");
  if (chaos_env != nullptr && chaos_env[0] != '\0') {
    const auto spec = ParseChaosSpec(chaos_env);
    const auto schedule =
        spec.ok() ? BuildChaosSchedule(*spec) : Result<ChaosSchedule>(
                                                    spec.status());
    if (!schedule.ok()) {
      std::fprintf(stderr, "chaos: bad ADPA_CHAOS value \"%s\": %s\n",
                   chaos_env, schedule.status().message().c_str());
      // A malformed schedule must not run silently fault-free — same
      // contract as a malformed ADPA_FAILPOINTS spec below.
      // lint:allow(no-bare-exit) — invalid env spec must not run silently
      _exit(41);
    }
    for (const auto& point : schedule->points) {
      const Status armed = ConfigureLocked(registry, point.name, point.spec);
      if (!armed.ok()) {
        std::fprintf(stderr, "chaos: failed to arm %s=%s: %s\n",
                     point.name.c_str(), point.spec.c_str(),
                     armed.message().c_str());
        // lint:allow(no-bare-exit) — generator/parser drift is a bug
        _exit(41);
      }
    }
    // Realized schedule goes to stderr so any failure replays from the
    // seed: tools/soak.sh greps and diffs these `chaos:` lines.
    std::fprintf(stderr, "%s", schedule->Describe().c_str());
  }
  const char* env = std::getenv("ADPA_FAILPOINTS");
  if (env == nullptr || env[0] == '\0') return;
  const Status status = ConfigureFromStringLocked(registry, env);
  if (!status.ok()) {
    // Can't use ADPA_CHECK here (logging.h depends on nothing, but keep
    // failpoint.cc dependency-free too); mirror its fail-fast behavior.
    // lint:allow(no-bare-exit) — invalid env spec must not run silently
    _exit(41);
  }
}

}  // namespace

Status Configure(const std::string& name, const std::string& spec) {
  Registry& registry = GetRegistry();
  MutexLock lock(&registry.mu);
  registry.env_loaded = true;  // explicit config supersedes the env var
  return ConfigureLocked(registry, name, spec);
}

Status ConfigureFromString(const std::string& specs) {
  Registry& registry = GetRegistry();
  MutexLock lock(&registry.mu);
  registry.env_loaded = true;
  return ConfigureFromStringLocked(registry, specs);
}

void ClearAll() {
  Registry& registry = GetRegistry();
  MutexLock lock(&registry.mu);
  registry.points.clear();
}

uint64_t HitCount(const std::string& name) {
  Registry& registry = GetRegistry();
  MutexLock lock(&registry.mu);
  const auto it = registry.points.find(name);
  return it == registry.points.end() ? 0 : it->second.hits;
}

Status Hit(const char* name) {
  Registry& registry = GetRegistry();
  PointConfig fired;
  {
    MutexLock lock(&registry.mu);
    LoadEnvLocked(registry);
    const auto it = registry.points.find(name);
    if (it == registry.points.end()) return Status::OK();
    PointConfig& config = it->second;
    ++config.hits;
    const bool fires =
        config.nth != 0   ? config.hits == config.nth
        : config.one_in != 0 ? config.hits % config.one_in == 0
                             : true;
    if (!fires) return Status::OK();
    fired = config;
  }
  switch (fired.action) {
    case Action::kError:
      return Status::Internal(
          std::string("failpoint ") + name + ": injected failure" +
          (fired.message.empty() ? "" : " (" + fired.message + ")"));
    case Action::kCrash:
      // Simulated power cut: no flushing, no atexit, no destructors.
      // lint:allow(no-bare-exit) — this is the failpoint crash action
      _exit(fired.exit_code);
    case Action::kDelay: {
      timespec duration;
      duration.tv_sec = static_cast<time_t>(fired.delay_ms / 1000);
      duration.tv_nsec = static_cast<long>(fired.delay_ms % 1000) * 1'000'000;
      nanosleep(&duration, nullptr);
      return Status::OK();
    }
  }
  return Status::OK();
}

}  // namespace adpa::failpoint

#endif  // ADPA_FAILPOINTS_ENABLED
