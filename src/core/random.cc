#include "src/core/random.h"

#include <cmath>
#include <numbers>

#include "src/core/logging.h"

namespace adpa {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t RotL(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (uint64_t& word : state_) word = SplitMix64(&sm);
}

uint64_t Rng::NextU64() {
  const uint64_t result = RotL(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = RotL(state_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 high bits give a uniform double in [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

int64_t Rng::UniformInt(int64_t n) {
  ADPA_CHECK_GT(n, 0);
  // Rejection sampling to remove modulo bias.
  const uint64_t un = static_cast<uint64_t>(n);
  const uint64_t limit = UINT64_MAX - UINT64_MAX % un;
  uint64_t draw;
  do {
    draw = NextU64();
  } while (draw >= limit);
  return static_cast<int64_t>(draw % un);
}

double Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = Uniform();
  while (u1 <= 1e-300) u1 = Uniform();
  const double u2 = Uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

bool Rng::Bernoulli(double p) { return Uniform() < p; }

int64_t Rng::Categorical(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    ADPA_CHECK_GE(w, 0.0);
    total += w;
  }
  ADPA_CHECK_GT(total, 0.0);
  double draw = Uniform() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    draw -= weights[i];
    if (draw < 0.0) return static_cast<int64_t>(i);
  }
  return static_cast<int64_t>(weights.size()) - 1;
}

std::vector<int64_t> Rng::SampleWithoutReplacement(int64_t n, int64_t count) {
  ADPA_CHECK_GE(n, count);
  std::vector<int64_t> indices(n);
  for (int64_t i = 0; i < n; ++i) indices[i] = i;
  // Partial Fisher-Yates: only the first `count` positions are needed.
  for (int64_t i = 0; i < count; ++i) {
    int64_t j = i + UniformInt(n - i);
    std::swap(indices[i], indices[j]);
  }
  indices.resize(count);
  return indices;
}

RngState Rng::SaveState() const {
  RngState state;
  for (int i = 0; i < 4; ++i) state.words[i] = state_[i];
  state.has_cached_normal = has_cached_normal_;
  state.cached_normal = cached_normal_;
  return state;
}

void Rng::RestoreState(const RngState& state) {
  for (int i = 0; i < 4; ++i) state_[i] = state.words[i];
  has_cached_normal_ = state.has_cached_normal;
  cached_normal_ = state.cached_normal;
}

}  // namespace adpa
