#pragma once
#include <cstdint>
#include <functional>
#include <utility>

namespace adpa {

/// Process-wide parallel execution runtime.
///
/// A lazily-initialized persistent thread pool backs `ParallelFor`, the
/// single primitive every compute hot path (dense kernels, SpMM, DP
/// propagation, grid-search trials) is built on.
///
/// Determinism contract: `ParallelFor` splits `[begin, end)` into contiguous
/// chunks and every index is processed exactly once by exactly one thread.
/// Kernels built on it partition *output* elements, so as long as the chunk
/// body writes only to its own range and reads shared inputs, results are
/// bitwise identical for any thread count (1, 2, 8, ...). Reductions that
/// would need cross-chunk combining (SumAll, FrobeniusNorm, ...) stay
/// serial for exactly this reason.
///
/// Thread-count resolution order:
///   1. `SetNumThreads(n)` with n >= 1 (the `--threads` flag ends up here),
///   2. the `ADPA_NUM_THREADS` environment variable,
///   3. `std::thread::hardware_concurrency()`.
///
/// Nested `ParallelFor` calls (a parallel kernel inside a parallel
/// grid-search trial, for example) execute inline on the calling worker, so
/// nesting is always safe and never oversubscribes.

/// Current thread-pool width (>= 1).
int GetNumThreads();

/// Reconfigures the pool width. `num_threads <= 0` restores automatic
/// detection (env var, then hardware concurrency). Joins the old pool's
/// workers; must not be called from inside a `ParallelFor` body.
void SetNumThreads(int num_threads);

/// The width automatic detection would pick (ADPA_NUM_THREADS env var,
/// falling back to hardware_concurrency), independent of SetNumThreads.
int DefaultNumThreads();

/// True while the calling thread is executing a `ParallelFor` chunk. Used
/// to run nested parallel regions inline.
bool InParallelRegion();

namespace internal {

/// Type-erased backend: splits `[begin, end)` into at most `GetNumThreads()`
/// contiguous chunks of at least `grain` indices, runs `fn(chunk_begin,
/// chunk_end)` on the pool plus the calling thread, and rethrows the first
/// exception a chunk threw after all chunks finished.
void ParallelForImpl(int64_t begin, int64_t end, int64_t grain,
                     const std::function<void(int64_t, int64_t)>& fn);

}  // namespace internal

/// Runs `fn(chunk_begin, chunk_end)` over a static partition of
/// `[begin, end)`. `grain` is the minimum chunk size (and the serial
/// cut-off: ranges of at most `grain` indices run inline with no pool
/// round-trip). `fn` must write only to state owned by its index range.
template <typename Fn>
void ParallelFor(int64_t begin, int64_t end, int64_t grain, Fn&& fn) {
  if (end <= begin) return;
  const int64_t min_chunk = grain > 0 ? grain : 1;
  if (InParallelRegion() || end - begin <= min_chunk || GetNumThreads() == 1) {
    std::forward<Fn>(fn)(begin, end);
    return;
  }
  internal::ParallelForImpl(begin, end, min_chunk,
                            std::function<void(int64_t, int64_t)>(
                                std::forward<Fn>(fn)));
}

}  // namespace adpa

