#pragma once
#include <cstdint>
#include <functional>
#include <utility>

namespace adpa {

/// Process-wide parallel execution runtime.
///
/// A lazily-initialized persistent thread pool backs `ParallelFor`, the
/// single primitive every compute hot path (dense kernels, SpMM, DP
/// propagation, grid-search trials) is built on.
///
/// Determinism contract: `ParallelFor` splits `[begin, end)` into contiguous
/// chunks and every index is processed exactly once by exactly one thread.
/// Kernels built on it partition *output* elements, so as long as the chunk
/// body writes only to its own range and reads shared inputs, results are
/// bitwise identical for any thread count (1, 2, 8, ...). Reductions that
/// would need cross-chunk combining (SumAll, FrobeniusNorm, ...) stay
/// serial for exactly this reason.
///
/// Thread-count resolution order:
///   1. `SetNumThreads(n)` with n >= 1 (the `--threads` flag ends up here),
///   2. the `ADPA_NUM_THREADS` environment variable,
///   3. `std::thread::hardware_concurrency()`.
///
/// Nested `ParallelFor` calls (a parallel kernel inside a parallel
/// grid-search trial, for example) execute inline on the calling worker, so
/// nesting is always safe and never oversubscribes.

/// Current thread-pool width (>= 1).
int GetNumThreads();

/// Reconfigures the pool width. `num_threads <= 0` restores automatic
/// detection (env var, then hardware concurrency). Joins the old pool's
/// workers; must not be called from inside a `ParallelFor` body.
void SetNumThreads(int num_threads);

/// The width automatic detection would pick (ADPA_NUM_THREADS env var,
/// falling back to hardware_concurrency), independent of SetNumThreads.
int DefaultNumThreads();

/// True while the calling thread is executing a `ParallelFor` chunk. Used
/// to run nested parallel regions inline.
bool InParallelRegion();

/// RAII scope that makes every `ParallelFor` on the calling thread run
/// inline (exactly as nested parallel regions do). For latency-bound paths
/// whose individual ops are too small to amortize waking sleeping pool
/// workers — the batched serving forward pins its sub-millisecond ops this
/// way so request latency never pays a cold cross-thread hand-off. Results
/// are unchanged by the thread-count-invariance contract; this is purely a
/// scheduling decision.
class SerialSection {
 public:
  SerialSection();
  ~SerialSection();
  SerialSection(const SerialSection&) = delete;
  SerialSection& operator=(const SerialSection&) = delete;
};

/// Minimum useful work per ParallelFor chunk, in approximate scalar
/// operations (~2M). Below this, the pool hand-off (wake, fetch, join)
/// costs more than the parallel speedup buys — measured on the serve path,
/// where fanning out sub-millisecond batch ops *reduced* 8-thread QPS below
/// 1-thread QPS.
inline constexpr int64_t kMinCostPerChunk = int64_t{1} << 21;

/// Grain (minimum chunk length) for a loop whose per-index cost is
/// `cost_per_item` scalar operations: enough indices per chunk to amortize
/// the pool hand-off. Depends only on the cost estimate — itself a pure
/// function of operand shapes in every caller — so chunk layout, and with
/// it the determinism contract, never depends on runtime state.
inline constexpr int64_t GrainForCost(int64_t cost_per_item) {
  const int64_t cost = cost_per_item > 0 ? cost_per_item : 1;
  const int64_t grain = kMinCostPerChunk / cost;
  return grain > 0 ? grain : 1;
}

namespace internal {

/// Type-erased backend: splits `[begin, end)` into at most `GetNumThreads()`
/// contiguous chunks of at least `grain` indices, runs `fn(chunk_begin,
/// chunk_end)` on the pool plus the calling thread, and rethrows the first
/// exception a chunk threw after all chunks finished.
void ParallelForImpl(int64_t begin, int64_t end, int64_t grain,
                     const std::function<void(int64_t, int64_t)>& fn);

}  // namespace internal

/// Runs `fn(chunk_begin, chunk_end)` over a static partition of
/// `[begin, end)`. `grain` is the minimum chunk size (and the serial
/// cut-off: ranges of at most `grain` indices run inline with no pool
/// round-trip). `fn` must write only to state owned by its index range.
template <typename Fn>
void ParallelFor(int64_t begin, int64_t end, int64_t grain, Fn&& fn) {
  if (end <= begin) return;
  const int64_t min_chunk = grain > 0 ? grain : 1;
  // `< 2 * min_chunk` means the range cannot produce two full grains, so
  // the pool could only ever run it as a single chunk — execute it inline
  // instead of paying the job round-trip for zero parallelism.
  if (InParallelRegion() || end - begin < 2 * min_chunk ||
      GetNumThreads() == 1) {
    std::forward<Fn>(fn)(begin, end);
    return;
  }
  // Pool hand-off (job + std::function allocation). Hot serving paths never
  // reach it: ForwardRows pins a SerialSection, so their ParallelFor calls
  // run inline through the branch above.
  // analyze:allow(alloc): pool hand-off; serving runs inline via SerialSection
  internal::ParallelForImpl(begin, end, min_chunk,
                            std::function<void(int64_t, int64_t)>(
                                std::forward<Fn>(fn)));
}

}  // namespace adpa

