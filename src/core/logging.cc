#include "src/core/logging.h"

namespace adpa {
namespace internal_logging {

void FatalError(const char* file, int line, const std::string& message) {
  std::cerr << "[FATAL " << file << ":" << line << "] " << message << std::endl;
  std::abort();
}

}  // namespace internal_logging
}  // namespace adpa
