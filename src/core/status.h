#pragma once
#include <string>
#include <utility>
#include <variant>

/// Marks a type or function whose return value must be consumed. Dropping a
/// `Status` on the floor silently swallows the error path hostile input is
/// designed to hit, so `Status` and `Result<T>` carry this class-wide: every
/// call site must assign, return, branch on, or ADPA_CHECK_OK the value —
/// the compiler enforces what tools/analyze.py's `unchecked-status` rule
/// audits. Spelled as a macro so annotation-hostile toolchains can blank it.
#define ADPA_NODISCARD [[nodiscard]]

namespace adpa {

/// Error categories used across the library. The public API does not throw;
/// fallible operations return `Status` (or `Result<T>`), mirroring the
/// RocksDB/Arrow convention for database-grade C++ libraries.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kFailedPrecondition,
  kNotFound,
  kInternal,
  /// Transient overload: the caller may retry later (queue full, deadline
  /// exceeded). The serving layer maps this to a structured `overloaded`
  /// reply instead of a generic error.
  kUnavailable,
};

/// A lightweight success-or-error value. Cheap to copy in the OK case.
class ADPA_NODISCARD Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string message) {
    return Status(StatusCode::kInvalidArgument, std::move(message));
  }
  static Status OutOfRange(std::string message) {
    return Status(StatusCode::kOutOfRange, std::move(message));
  }
  static Status FailedPrecondition(std::string message) {
    return Status(StatusCode::kFailedPrecondition, std::move(message));
  }
  static Status NotFound(std::string message) {
    return Status(StatusCode::kNotFound, std::move(message));
  }
  static Status Internal(std::string message) {
    return Status(StatusCode::kInternal, std::move(message));
  }
  static Status Unavailable(std::string message) {
    return Status(StatusCode::kUnavailable, std::move(message));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable representation, e.g. "InvalidArgument: bad k".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status. Modeled after
/// `arrow::Result` / `absl::StatusOr` but dependency-free.
template <typename T>
class ADPA_NODISCARD Result {
 public:
  /// Implicit construction from a value or a non-OK Status keeps call sites
  /// terse (`return value;` / `return Status::InvalidArgument(...);`).
  Result(T value) : value_(std::move(value)) {}        // NOLINT
  Result(Status status) : value_(std::move(status)) {  // NOLINT
    if (std::get<Status>(value_).ok()) {
      value_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return std::holds_alternative<T>(value_); }

  /// Error status; OK() when a value is held.
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(value_);
  }

  /// Value accessors. Must only be called when ok().
  const T& value() const& { return std::get<T>(value_); }
  T& value() & { return std::get<T>(value_); }
  T&& value() && { return std::get<T>(std::move(value_)); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> value_;
};

}  // namespace adpa

/// Propagates a non-OK Status from the enclosing function.
#define ADPA_RETURN_IF_ERROR(expr)              \
  do {                                          \
    ::adpa::Status _adpa_status = (expr);       \
    if (!_adpa_status.ok()) return _adpa_status; \
  } while (false)

