#pragma once
#include <cstddef>
#include <cstdint>
#include <string>

namespace adpa {

/// Non-cryptographic hashing used by the persistence layer (src/io):
/// CRC32 guards checkpoint payloads against bit rot and truncation, and
/// FNV-1a fingerprints graph/feature content for cache keys. Both are
/// deterministic functions of the input bytes — no seeding, no wall clock —
/// so fingerprints are stable across processes, machines, and PRs.

/// CRC-32 (IEEE 802.3 polynomial, reflected), the same checksum used by
/// zlib/gzip/PNG. `Crc32(data, n)` is a convenience over the accumulator.
class Crc32Accumulator {
 public:
  void Update(const void* data, size_t size);

  /// Final checksum of everything fed so far. The accumulator stays usable
  /// (Digest is a pure read).
  uint32_t Digest() const { return state_ ^ 0xFFFFFFFFu; }

 private:
  uint32_t state_ = 0xFFFFFFFFu;
};

uint32_t Crc32(const void* data, size_t size);

/// 64-bit FNV-1a over a byte stream. Used to fingerprint dataset content
/// (edge lists, feature matrices) for checkpoint/cache validation; collisions
/// are astronomically unlikely for the "did the inputs change?" use case and
/// harmless (a stale cache is recomputed, never trusted blindly elsewhere).
class Fnv1aHasher {
 public:
  void Update(const void* data, size_t size);

  /// Convenience for POD values (hashes the object representation).
  template <typename T>
  void UpdateValue(const T& value) {
    Update(&value, sizeof(value));
  }

  void UpdateString(const std::string& text) {
    UpdateValue<uint64_t>(text.size());
    Update(text.data(), text.size());
  }

  uint64_t Digest() const { return state_; }

 private:
  uint64_t state_ = 0xcbf29ce484222325ULL;  // FNV offset basis
};

uint64_t Fnv1a64(const void* data, size_t size);

}  // namespace adpa
