#pragma once
#include <cstdint>
#include <vector>

namespace adpa {

/// The complete internal state of an Rng: the four xoshiro256** words plus
/// the Box-Muller cache. Restoring it resumes the exact draw sequence —
/// the training-resume path (src/train/trainer.h) persists this so a
/// resumed run replays the same dropout masks bit for bit.
struct RngState {
  uint64_t words[4] = {0, 0, 0, 0};
  bool has_cached_normal = false;
  double cached_normal = 0.0;
};

/// Deterministic, fast pseudo-random generator (xoshiro256** seeded through
/// SplitMix64). Every stochastic component in the library draws from an
/// explicitly seeded Rng so experiments are reproducible bit-for-bit.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Uniform 64-bit word.
  uint64_t NextU64();

  /// Uniform double in [0, 1).
  double Uniform();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  int64_t UniformInt(int64_t n);

  /// Standard normal via Box-Muller (cached second draw).
  double Normal();

  /// Normal with the given mean and standard deviation.
  double Normal(double mean, double stddev);

  /// Bernoulli draw with success probability p.
  bool Bernoulli(double p);

  /// Samples an index from an unnormalized non-negative weight vector.
  /// Requires at least one positive weight.
  int64_t Categorical(const std::vector<double>& weights);

  /// Fisher-Yates shuffle of `values`.
  template <typename T>
  void Shuffle(std::vector<T>* values) {
    for (int64_t i = static_cast<int64_t>(values->size()) - 1; i > 0; --i) {
      int64_t j = UniformInt(i + 1);
      std::swap((*values)[i], (*values)[j]);
    }
  }

  /// Returns `count` distinct indices drawn uniformly from [0, n).
  std::vector<int64_t> SampleWithoutReplacement(int64_t n, int64_t count);

  /// Snapshot / restore of the full generator state (see RngState).
  RngState SaveState() const;
  void RestoreState(const RngState& state);

 private:
  uint64_t state_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace adpa

