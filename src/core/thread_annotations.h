#pragma once

/// Static-analysis annotations (DESIGN.md §13).
///
/// Clang Thread Safety Analysis attributes, exposed as ADPA_* macros that
/// compile to nothing on non-Clang compilers (the Release/GCC builds) and on
/// Clang builds annotate the locking discipline so `-Wthread-safety -Werror`
/// proves it at compile time: every member access to a ADPA_GUARDED_BY field
/// must hold the named capability, every ADPA_REQUIRES function must be
/// called with it held, and lock/unlock mismatches are build errors.
///
/// The annotated primitives themselves live in src/core/mutex.h
/// (adpa::Mutex / adpa::MutexLock / adpa::CondVar); raw std::mutex use in
/// src/ is banned by the `mutex-annotations` lint rule so the analysis
/// cannot be bypassed by accident.
///
/// ADPA_HOT is the hot-path marker consumed by tools/analyze.py: a function
/// tagged ADPA_HOT must not transitively reach an allocation site without a
/// `// analyze:allow(alloc)` waiver, which is what keeps the serving forward
/// and the SIMD kernel entry points structurally allocation-free.

#if defined(__clang__)
#define ADPA_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define ADPA_THREAD_ANNOTATION(x)  // no-op outside Clang
#endif

/// Type annotations ------------------------------------------------------

/// Marks a class as a capability (a lock). The string names the capability
/// kind in diagnostics ("mutex").
#define ADPA_CAPABILITY(x) ADPA_THREAD_ANNOTATION(capability(x))

/// Marks an RAII class whose constructor acquires and destructor releases a
/// capability.
#define ADPA_SCOPED_CAPABILITY ADPA_THREAD_ANNOTATION(scoped_lockable)

/// Member annotations -----------------------------------------------------

/// The member may only be read or written while holding the given
/// capability.
#define ADPA_GUARDED_BY(x) ADPA_THREAD_ANNOTATION(guarded_by(x))

/// The pointee (not the pointer itself) is protected by the capability.
#define ADPA_PT_GUARDED_BY(x) ADPA_THREAD_ANNOTATION(pt_guarded_by(x))

/// Lock-order edges: acquiring this capability is only legal before/after
/// the listed ones — cycles become compile errors instead of deadlocks.
#define ADPA_ACQUIRED_BEFORE(...) \
  ADPA_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define ADPA_ACQUIRED_AFTER(...) \
  ADPA_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/// Function annotations ---------------------------------------------------

/// The caller must hold the capability when calling (and still holds it
/// after the call returns).
#define ADPA_REQUIRES(...) \
  ADPA_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// The function acquires the capability and holds it on return.
#define ADPA_ACQUIRE(...) \
  ADPA_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// The function releases a capability the caller holds.
#define ADPA_RELEASE(...) \
  ADPA_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// The function tries to acquire the capability; the first argument is the
/// return value that signals success.
#define ADPA_TRY_ACQUIRE(...) \
  ADPA_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// The caller must NOT hold the capability (deadlock prevention for
/// self-locking public APIs).
#define ADPA_EXCLUDES(...) ADPA_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Asserts at runtime that the capability is held and tells the analysis so
/// (for code reachable only with the lock held through an untracked path).
#define ADPA_ASSERT_CAPABILITY(x) \
  ADPA_THREAD_ANNOTATION(assert_capability(x))

/// The function returns a reference to the given capability.
#define ADPA_RETURN_CAPABILITY(x) ADPA_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: the function body is not analyzed. Forbidden in src/serve/
/// and src/core/ (the acceptance bar is zero waivers there); anywhere else
/// it must carry a comment explaining why the analysis cannot see the
/// invariant.
#define ADPA_NO_THREAD_SAFETY_ANALYSIS \
  ADPA_THREAD_ANNOTATION(no_thread_safety_analysis)

/// Hot-path marker --------------------------------------------------------

/// Tags a function as serving-hot for tools/analyze.py: the analyzer walks
/// the call graph from every ADPA_HOT root and reports any transitively
/// reachable allocation site (operator new, push_back, resize, ...) that
/// does not carry a `// analyze:allow(alloc): <reason>` waiver. The Clang
/// attribute keeps the tag visible to AST tooling; on other compilers the
/// marker is consumed textually by the analyzer and compiles to nothing.
#if defined(__clang__)
#define ADPA_HOT __attribute__((annotate("adpa_hot")))
#else
#define ADPA_HOT
#endif
