#pragma once
#include <cstdint>
#include <string>
#include <vector>

#include "src/core/logging.h"
#include "src/core/status.h"
#include "src/tensor/matrix.h"

namespace adpa {

/// One nonzero of a sparse matrix in coordinate form.
struct Triplet {
  int64_t row = 0;
  int64_t col = 0;
  float value = 0.0f;
};

/// Square-or-rectangular CSR float32 sparse matrix. This is the topology
/// container behind every propagation operator in the library: adjacency
/// matrices, normalized convolution operators, magnetic Laplacian parts, and
/// the directed-pattern (DP) products all live here.
///
/// Invariants: row_ptr has rows()+1 monotone entries; within a row, column
/// indices are strictly increasing (duplicates are coalesced at build time).
class SparseMatrix {
 public:
  /// Empty 0x0 matrix.
  SparseMatrix() : rows_(0), cols_(0), row_ptr_(1, 0) {}

  /// Builds from COO triplets. Duplicate (row, col) entries are summed.
  static SparseMatrix FromTriplets(int64_t rows, int64_t cols,
                                   std::vector<Triplet> triplets);

  /// Adopts pre-built CSR arrays (external loaders / serialized operators).
  /// ADPA_CHECK-validates full well-formedness — row_ptr monotone from 0 to
  /// nnz, column indices strictly increasing within each row and in
  /// [0, cols) — and aborts on malformed input; use FromTriplets when the
  /// input is untrusted enough to deserve coalescing instead, or TryFromCsr
  /// when malformed input must be rejected rather than aborted on.
  static SparseMatrix FromCsr(int64_t rows, int64_t cols,
                              std::vector<int64_t> row_ptr,
                              std::vector<int32_t> col_idx,
                              std::vector<float> values);

  /// Status-returning twin of FromCsr for untrusted input (network payloads,
  /// fuzzed parsers): returns InvalidArgument instead of aborting. The
  /// validation order is hostile-input safe — row_ptr bounds are fully
  /// established before any col_idx entry is dereferenced.
  ADPA_NODISCARD static Result<SparseMatrix> TryFromCsr(
      int64_t rows, int64_t cols, std::vector<int64_t> row_ptr,
      std::vector<int32_t> col_idx, std::vector<float> values);

  /// The single source of truth for CSR well-formedness, shared by
  /// FromCsr/TryFromCsr/CheckInvariants. OK iff the arrays form a valid
  /// rows x cols CSR matrix.
  ADPA_NODISCARD static Status ValidateCsr(
      int64_t rows, int64_t cols, const std::vector<int64_t>& row_ptr,
      const std::vector<int32_t>& col_idx, const std::vector<float>& values);

  /// Identity of size n.
  static SparseMatrix Identity(int64_t n);

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }
  int64_t nnz() const { return static_cast<int64_t>(values_.size()); }

  const std::vector<int64_t>& row_ptr() const { return row_ptr_; }
  const std::vector<int32_t>& col_idx() const { return col_idx_; }
  const std::vector<float>& values() const { return values_; }
  std::vector<float>& mutable_values() { return values_; }

  /// Value at (r, c); 0 if the entry is structurally absent. O(log row nnz).
  float At(int64_t r, int64_t c) const;

  /// out = this * dense. The workhorse SpMM kernel (CSR x dense).
  Matrix Multiply(const Matrix& dense) const;

  /// Multiply writing into a caller-owned buffer (resized to rows() x
  /// dense.cols(); no allocation once `out` has the capacity). `out` must
  /// not alias `dense`. Bitwise identical to Multiply.
  void MultiplyInto(const Matrix& dense, Matrix* out) const;

  /// Fused per-hop propagation chain (DESIGN.md §12):
  ///   out = beta * (this * dense) + alpha * residual
  /// in one pass over the output — the SpMM, the scale, and the residual
  /// add of the unfused Multiply + ScaleInPlace + AddScaledInPlace sequence
  /// without materializing the intermediate product. Bitwise identical to
  /// that unfused sequence at every dispatch level. `residual` may alias
  /// `dense`; `out` must alias neither.
  void MultiplyAxpbyInto(const Matrix& dense, const Matrix& residual,
                         float alpha, float beta, Matrix* out) const;

  /// out = thisᵀ * dense, computed by scatter without materializing thisᵀ.
  Matrix MultiplyTransposed(const Matrix& dense) const;

  /// Returns the explicit transpose in CSR form.
  SparseMatrix Transposed() const;

  /// Sparse-sparse product this * other (used to materialize 2-order DP
  /// reachability for AMUD). `max_row_nnz`, if positive, caps the per-row
  /// fill-in by keeping the largest-magnitude entries (density guard).
  SparseMatrix MultiplySparse(const SparseMatrix& other,
                              int64_t max_row_nnz = 0) const;

  /// Entrywise sum of two same-shape sparse matrices.
  SparseMatrix AddSparse(const SparseMatrix& other) const;

  /// Multiplies every stored value by `factor`.
  void ScaleInPlace(float factor);

  /// Replaces every stored value with 1 (pattern/boolean view).
  SparseMatrix Binarized() const;

  /// Row sums (out-degrees when this is an adjacency matrix).
  std::vector<float> RowSums() const;
  /// Column sums (in-degrees when this is an adjacency matrix).
  std::vector<float> ColSums() const;

  /// Full O(nnz) CSR well-formedness sweep (the class invariants above);
  /// aborts on violation. DebugCheckInvariants is the DCHECK-gated variant
  /// constructors use: free in Release, a full sweep under the sanitizer
  /// presets and debug builds.
  void CheckInvariants() const;
  void DebugCheckInvariants() const {
#if ADPA_DCHECK_IS_ON
    CheckInvariants();
#endif
  }

  /// Dense copy; intended for tests and tiny graphs only.
  Matrix ToDense() const;

  std::string ToString(int max_entries = 16) const;

 private:
  int64_t rows_;
  int64_t cols_;
  std::vector<int64_t> row_ptr_;
  std::vector<int32_t> col_idx_;
  std::vector<float> values_;
};

/// Convolution normalization family of GCN Eq. (1): Ã = D̂^{r-1} Â D̂^{-r}
/// (row degrees on the left, column degrees on the right). r = 0.5 is the
/// symmetric normalization, r = 0 the random-walk D⁻¹A, and r = 1 the
/// reverse-transition A D⁻¹. Zero degrees are left untouched.
SparseMatrix NormalizeConvolution(const SparseMatrix& a, double r);

/// Row-stochastic normalization D_out⁻¹ A.
SparseMatrix NormalizeRow(const SparseMatrix& a);

/// Symmetric normalization D^{-1/2} A D^{-1/2}.
SparseMatrix NormalizeSymmetric(const SparseMatrix& a);

/// A + I (skips rows that already have a diagonal entry, adding to it).
SparseMatrix AddSelfLoops(const SparseMatrix& a, float weight = 1.0f);

}  // namespace adpa

