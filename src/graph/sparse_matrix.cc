#include "src/graph/sparse_matrix.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "src/core/logging.h"
#include "src/core/parallel.h"
#include "src/tensor/simd.h"

namespace adpa {

SparseMatrix SparseMatrix::FromTriplets(int64_t rows, int64_t cols,
                                        std::vector<Triplet> triplets) {
  ADPA_CHECK_GE(rows, 0);
  ADPA_CHECK_GE(cols, 0);
  for (const Triplet& t : triplets) {
    ADPA_CHECK_GE(t.row, 0);
    ADPA_CHECK_LT(t.row, rows);
    ADPA_CHECK_GE(t.col, 0);
    ADPA_CHECK_LT(t.col, cols);
  }
  std::sort(triplets.begin(), triplets.end(),
            [](const Triplet& a, const Triplet& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });
  SparseMatrix out;
  out.rows_ = rows;
  out.cols_ = cols;
  out.row_ptr_.assign(rows + 1, 0);
  out.col_idx_.reserve(triplets.size());
  out.values_.reserve(triplets.size());
  for (size_t i = 0; i < triplets.size();) {
    size_t j = i;
    double sum = 0.0;
    while (j < triplets.size() && triplets[j].row == triplets[i].row &&
           triplets[j].col == triplets[i].col) {
      sum += triplets[j].value;
      ++j;
    }
    out.col_idx_.push_back(static_cast<int32_t>(triplets[i].col));
    out.values_.push_back(static_cast<float>(sum));
    out.row_ptr_[triplets[i].row + 1]++;
    i = j;
  }
  for (int64_t r = 0; r < rows; ++r) out.row_ptr_[r + 1] += out.row_ptr_[r];
  out.DebugCheckInvariants();
  return out;
}

Status SparseMatrix::ValidateCsr(int64_t rows, int64_t cols,
                                 const std::vector<int64_t>& row_ptr,
                                 const std::vector<int32_t>& col_idx,
                                 const std::vector<float>& values) {
  auto fail = [](const std::string& what) {
    return Status::InvalidArgument("malformed CSR: " + what);
  };
  if (rows < 0 || cols < 0) return fail("negative dimensions");
  // size_t comparison avoids rows + 1 overflow on hostile dimensions.
  if (row_ptr.empty() ||
      row_ptr.size() - 1 != static_cast<uint64_t>(rows)) {
    return fail("row_ptr length " + std::to_string(row_ptr.size()) +
                " for " + std::to_string(rows) + " rows");
  }
  if (col_idx.size() != values.size()) {
    return fail("col_idx/values length mismatch");
  }
  const int64_t nnz = static_cast<int64_t>(values.size());
  if (row_ptr.front() != 0) return fail("row_ptr does not start at 0");
  if (row_ptr.back() != nnz) {
    return fail("row_ptr does not end at nnz = " + std::to_string(nnz));
  }
  // Row pointers are validated in full before any entry is dereferenced:
  // front == 0, back == nnz, and monotonicity together bound every
  // row_ptr[r] into [0, nnz], so the per-row sweep below cannot read out
  // of range even on hostile input.
  for (int64_t r = 0; r < rows; ++r) {
    if (row_ptr[r] > row_ptr[r + 1]) {
      return fail("row_ptr not monotone at row " + std::to_string(r));
    }
  }
  for (int64_t r = 0; r < rows; ++r) {
    for (int64_t p = row_ptr[r]; p < row_ptr[r + 1]; ++p) {
      if (col_idx[p] < 0) {
        return fail("negative column in row " + std::to_string(r));
      }
      if (col_idx[p] >= cols) {
        return fail("column out of range in row " + std::to_string(r));
      }
      if (p != row_ptr[r] && col_idx[p - 1] >= col_idx[p]) {
        return fail("columns not strictly increasing in row " +
                    std::to_string(r));
      }
    }
  }
  return Status::OK();
}

Result<SparseMatrix> SparseMatrix::TryFromCsr(int64_t rows, int64_t cols,
                                              std::vector<int64_t> row_ptr,
                                              std::vector<int32_t> col_idx,
                                              std::vector<float> values) {
  ADPA_RETURN_IF_ERROR(ValidateCsr(rows, cols, row_ptr, col_idx, values));
  SparseMatrix out;
  out.rows_ = rows;
  out.cols_ = cols;
  out.row_ptr_ = std::move(row_ptr);
  out.col_idx_ = std::move(col_idx);
  out.values_ = std::move(values);
  return out;
}

SparseMatrix SparseMatrix::FromCsr(int64_t rows, int64_t cols,
                                   std::vector<int64_t> row_ptr,
                                   std::vector<int32_t> col_idx,
                                   std::vector<float> values) {
  Result<SparseMatrix> out = TryFromCsr(rows, cols, std::move(row_ptr),
                                        std::move(col_idx), std::move(values));
  ADPA_CHECK(out.ok()) << out.status().message();
  return std::move(out).value();
}

void SparseMatrix::CheckInvariants() const {
  Status st = ValidateCsr(rows_, cols_, row_ptr_, col_idx_, values_);
  ADPA_CHECK(st.ok()) << st.message();
}

SparseMatrix SparseMatrix::Identity(int64_t n) {
  std::vector<Triplet> triplets;
  triplets.reserve(n);
  for (int64_t i = 0; i < n; ++i) triplets.push_back({i, i, 1.0f});
  return FromTriplets(n, n, std::move(triplets));
}

float SparseMatrix::At(int64_t r, int64_t c) const {
  ADPA_CHECK_GE(r, 0);
  ADPA_CHECK_LT(r, rows_);
  const auto begin = col_idx_.begin() + row_ptr_[r];
  const auto end = col_idx_.begin() + row_ptr_[r + 1];
  const auto it = std::lower_bound(begin, end, static_cast<int32_t>(c));
  if (it == end || *it != c) return 0.0f;
  return values_[it - col_idx_.begin()];
}

namespace {

// Grain for row-partitioned SpMM kernels: ~2 * avg_row_nnz * f scalar ops
// per row. Depends only on the operand shapes, so the chunk layout — and
// with it the determinism contract — is a pure function of the problem.
int64_t SpmmRowGrain(int64_t rows, int64_t nnz, int64_t f) {
  const int64_t avg_nnz = rows > 0 ? std::max<int64_t>(1, nnz / rows) : 1;
  return GrainForCost(2 * avg_nnz * f);
}

}  // namespace

void SparseMatrix::MultiplyInto(const Matrix& dense, Matrix* out) const {
  ADPA_CHECK_EQ(cols_, dense.rows());
  ADPA_CHECK(out != &dense);
  DebugCheckInvariants();
  out->Resize(rows_, dense.cols());
  const int64_t f = dense.cols();
  if (rows_ == 0 || f == 0) return;
  const simd::KernelTable& kernels = simd::Kernels();
  const int64_t* row_ptr = row_ptr_.data();
  const int32_t* col_idx = col_idx_.data();
  const float* values = values_.data();
  const float* in = dense.data();
  float* out_data = out->data();
  // Each output row depends only on its own CSR row, so partitioning rows
  // over threads keeps the per-row accumulation order (and every bit of
  // the result) identical to the serial kernel.
  ParallelFor(0, rows_, SpmmRowGrain(rows_, nnz(), f),
              [&](int64_t row_begin, int64_t row_end) {
                kernels.spmm_rows(row_ptr, col_idx, values, in, f, row_begin,
                                  row_end, out_data);
              });
}

Matrix SparseMatrix::Multiply(const Matrix& dense) const {
  Matrix out;
  MultiplyInto(dense, &out);
  return out;
}

void SparseMatrix::MultiplyAxpbyInto(const Matrix& dense,
                                     const Matrix& residual, float alpha,
                                     float beta, Matrix* out) const {
  ADPA_CHECK_EQ(cols_, dense.rows());
  ADPA_CHECK_EQ(residual.rows(), rows_);
  ADPA_CHECK_EQ(residual.cols(), dense.cols());
  ADPA_CHECK(out != &dense && out != &residual);
  DebugCheckInvariants();
  out->Resize(rows_, dense.cols());
  const int64_t f = dense.cols();
  if (rows_ == 0 || f == 0) return;
  const simd::KernelTable& kernels = simd::Kernels();
  const int64_t* row_ptr = row_ptr_.data();
  const int32_t* col_idx = col_idx_.data();
  const float* values = values_.data();
  const float* in = dense.data();
  const float* res = residual.data();
  float* out_data = out->data();
  ParallelFor(0, rows_, SpmmRowGrain(rows_, nnz(), f),
              [&](int64_t row_begin, int64_t row_end) {
                kernels.spmm_axpby_rows(row_ptr, col_idx, values, in, res,
                                        alpha, beta, f, row_begin, row_end,
                                        out_data);
              });
}

Matrix SparseMatrix::MultiplyTransposed(const Matrix& dense) const {
  ADPA_CHECK_EQ(rows_, dense.rows());
  DebugCheckInvariants();
  Matrix out(cols_, dense.cols());
  const int64_t f = dense.cols();
  // The serial kernel scatters row r into out[col_idx]; a parallel scatter
  // would race. Instead each thread owns a contiguous range of *output*
  // rows and gathers: for every input row, binary-search (columns are
  // sorted within a row) the sub-range of nonzeros that lands in the owned
  // output range. Input rows are visited in increasing r exactly like the
  // serial scatter, so per-element accumulation order — and the result —
  // is bitwise identical for any thread count.
  const simd::KernelTable& kernels = simd::Kernels();
  ParallelFor(0, cols_, SpmmRowGrain(cols_, nnz(), f),
              [&](int64_t out_begin, int64_t out_end) {
    for (int64_t r = 0; r < rows_; ++r) {
      const float* in_row = dense.Row(r);
      const auto row_begin = col_idx_.begin() + row_ptr_[r];
      const auto row_end = col_idx_.begin() + row_ptr_[r + 1];
      const auto first = std::lower_bound(row_begin, row_end,
                                          static_cast<int32_t>(out_begin));
      for (auto it = first; it != row_end && *it < out_end; ++it) {
        const float w = values_[it - col_idx_.begin()];
        kernels.axpy(out.Row(*it), in_row, w, f);
      }
    }
  });
  return out;
}

SparseMatrix SparseMatrix::Transposed() const {
  std::vector<Triplet> triplets;
  triplets.reserve(nnz());
  for (int64_t r = 0; r < rows_; ++r) {
    for (int64_t p = row_ptr_[r]; p < row_ptr_[r + 1]; ++p) {
      triplets.push_back({col_idx_[p], r, values_[p]});
    }
  }
  return FromTriplets(cols_, rows_, std::move(triplets));
}

SparseMatrix SparseMatrix::MultiplySparse(const SparseMatrix& other,
                                          int64_t max_row_nnz) const {
  ADPA_CHECK_EQ(cols_, other.rows_);
  // Fixed-size row blocks (independent of the thread count) each produce
  // their own triplet list; every row's accumulation runs exactly as in
  // the serial kernel, and FromTriplets re-sorts by (row, col), so the
  // result is identical for any thread count.
  constexpr int64_t kRowBlock = 256;
  const int64_t num_blocks = (rows_ + kRowBlock - 1) / kRowBlock;
  std::vector<std::vector<Triplet>> block_triplets(num_blocks);
  ParallelFor(0, num_blocks, 1, [&](int64_t block_begin, int64_t block_end) {
    // Gustavson's algorithm with a dense accumulator per row.
    std::vector<float> accumulator(other.cols_, 0.0f);
    std::vector<int64_t> touched;
    for (int64_t blk = block_begin; blk < block_end; ++blk) {
      std::vector<Triplet>& triplets = block_triplets[blk];
      const int64_t r_first = blk * kRowBlock;
      const int64_t r_last = std::min(r_first + kRowBlock, rows_);
      for (int64_t r = r_first; r < r_last; ++r) {
        touched.clear();
        for (int64_t p = row_ptr_[r]; p < row_ptr_[r + 1]; ++p) {
          const int64_t mid = col_idx_[p];
          const float w = values_[p];
          for (int64_t q = other.row_ptr_[mid]; q < other.row_ptr_[mid + 1];
               ++q) {
            const int64_t c = other.col_idx_[q];
            if (accumulator[c] == 0.0f) touched.push_back(c);
            accumulator[c] += w * other.values_[q];
          }
        }
        if (max_row_nnz > 0 &&
            static_cast<int64_t>(touched.size()) > max_row_nnz) {
          // Density guard: keep only the strongest entries of this row.
          std::nth_element(touched.begin(), touched.begin() + max_row_nnz,
                           touched.end(), [&](int64_t a, int64_t b) {
                             return std::fabs(accumulator[a]) >
                                    std::fabs(accumulator[b]);
                           });
          for (size_t i = max_row_nnz; i < touched.size(); ++i) {
            accumulator[touched[i]] = 0.0f;
          }
          touched.resize(max_row_nnz);
        }
        for (int64_t c : touched) {
          if (accumulator[c] != 0.0f) {
            triplets.push_back({r, c, accumulator[c]});
            accumulator[c] = 0.0f;
          }
        }
      }
    }
  });
  size_t total = 0;
  for (const std::vector<Triplet>& block : block_triplets) {
    total += block.size();
  }
  std::vector<Triplet> triplets;
  triplets.reserve(total);
  for (std::vector<Triplet>& block : block_triplets) {
    triplets.insert(triplets.end(), block.begin(), block.end());
  }
  return FromTriplets(rows_, other.cols_, std::move(triplets));
}

SparseMatrix SparseMatrix::AddSparse(const SparseMatrix& other) const {
  ADPA_CHECK_EQ(rows_, other.rows_);
  ADPA_CHECK_EQ(cols_, other.cols_);
  std::vector<Triplet> triplets;
  triplets.reserve(nnz() + other.nnz());
  for (int64_t r = 0; r < rows_; ++r) {
    for (int64_t p = row_ptr_[r]; p < row_ptr_[r + 1]; ++p) {
      triplets.push_back({r, col_idx_[p], values_[p]});
    }
    for (int64_t p = other.row_ptr_[r]; p < other.row_ptr_[r + 1]; ++p) {
      triplets.push_back({r, other.col_idx_[p], other.values_[p]});
    }
  }
  return FromTriplets(rows_, cols_, std::move(triplets));
}

void SparseMatrix::ScaleInPlace(float factor) {
  for (float& value : values_) value *= factor;
}

SparseMatrix SparseMatrix::Binarized() const {
  SparseMatrix out = *this;
  for (float& value : out.values_) value = value != 0.0f ? 1.0f : 0.0f;
  return out;
}

std::vector<float> SparseMatrix::RowSums() const {
  std::vector<float> sums(rows_, 0.0f);
  for (int64_t r = 0; r < rows_; ++r) {
    double acc = 0.0;  // double accumulator, single final round to float
    for (int64_t p = row_ptr_[r]; p < row_ptr_[r + 1]; ++p) {
      acc += values_[p];
    }
    sums[r] = static_cast<float>(acc);
  }
  return sums;
}

std::vector<float> SparseMatrix::ColSums() const {
  std::vector<double> acc(cols_, 0.0);
  for (size_t p = 0; p < values_.size(); ++p) acc[col_idx_[p]] += values_[p];
  std::vector<float> sums(cols_);
  for (int64_t c = 0; c < cols_; ++c) sums[c] = static_cast<float>(acc[c]);
  return sums;
}

Matrix SparseMatrix::ToDense() const {
  Matrix out(rows_, cols_);
  for (int64_t r = 0; r < rows_; ++r) {
    for (int64_t p = row_ptr_[r]; p < row_ptr_[r + 1]; ++p) {
      out.At(r, col_idx_[p]) = values_[p];
    }
  }
  return out;
}

std::string SparseMatrix::ToString(int max_entries) const {
  std::ostringstream out;
  out << "SparseMatrix(" << rows_ << "x" << cols_ << ", nnz=" << nnz() << ")";
  int shown = 0;
  for (int64_t r = 0; r < rows_ && shown < max_entries; ++r) {
    for (int64_t p = row_ptr_[r]; p < row_ptr_[r + 1] && shown < max_entries;
         ++p, ++shown) {
      out << " (" << r << "," << col_idx_[p] << ")=" << values_[p];
    }
  }
  return out.str();
}

SparseMatrix NormalizeConvolution(const SparseMatrix& a, double r) {
  ADPA_CHECK_GE(r, 0.0);
  ADPA_CHECK_LE(r, 1.0);
  const std::vector<float> row_deg = a.RowSums();
  const std::vector<float> col_deg = a.ColSums();
  std::vector<Triplet> triplets;
  triplets.reserve(a.nnz());
  const auto& row_ptr = a.row_ptr();
  const auto& col_idx = a.col_idx();
  const auto& values = a.values();
  for (int64_t i = 0; i < a.rows(); ++i) {
    const double left =
        row_deg[i] > 0.0f ? std::pow(static_cast<double>(row_deg[i]), r - 1.0)
                          : 1.0;
    for (int64_t p = row_ptr[i]; p < row_ptr[i + 1]; ++p) {
      const int64_t j = col_idx[p];
      const double right =
          col_deg[j] > 0.0f ? std::pow(static_cast<double>(col_deg[j]), -r)
                            : 1.0;
      triplets.push_back(
          {i, j, static_cast<float>(left * right * values[p])});
    }
  }
  return SparseMatrix::FromTriplets(a.rows(), a.cols(), std::move(triplets));
}

SparseMatrix NormalizeRow(const SparseMatrix& a) {
  return NormalizeConvolution(a, 0.0);
}

SparseMatrix NormalizeSymmetric(const SparseMatrix& a) {
  return NormalizeConvolution(a, 0.5);
}

SparseMatrix AddSelfLoops(const SparseMatrix& a, float weight) {
  ADPA_CHECK_EQ(a.rows(), a.cols());
  std::vector<Triplet> triplets;
  triplets.reserve(a.nnz() + a.rows());
  const auto& row_ptr = a.row_ptr();
  const auto& col_idx = a.col_idx();
  const auto& values = a.values();
  for (int64_t r = 0; r < a.rows(); ++r) {
    for (int64_t p = row_ptr[r]; p < row_ptr[r + 1]; ++p) {
      triplets.push_back({r, col_idx[p], values[p]});
    }
    triplets.push_back({r, r, weight});
  }
  return SparseMatrix::FromTriplets(a.rows(), a.cols(), std::move(triplets));
}

}  // namespace adpa
