#include "src/graph/digraph.h"

#include <algorithm>

#include "src/core/logging.h"

namespace adpa {

Result<Digraph> Digraph::Create(int64_t num_nodes, std::vector<Edge> edges) {
  if (num_nodes < 0) {
    return Status::InvalidArgument("num_nodes must be non-negative");
  }
  for (const Edge& e : edges) {
    if (e.src < 0 || e.src >= num_nodes || e.dst < 0 || e.dst >= num_nodes) {
      return Status::OutOfRange("edge endpoint out of range");
    }
    if (e.src == e.dst) {
      return Status::InvalidArgument("self loops are not allowed in Digraph");
    }
  }
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());

  Digraph g;
  g.num_nodes_ = num_nodes;
  g.edges_ = std::move(edges);
  g.out_neighbors_.assign(num_nodes, {});
  g.in_neighbors_.assign(num_nodes, {});
  for (const Edge& e : g.edges_) {
    g.out_neighbors_[e.src].push_back(e.dst);
    g.in_neighbors_[e.dst].push_back(e.src);
  }
  for (auto& neighbors : g.in_neighbors_) {
    std::sort(neighbors.begin(), neighbors.end());
  }
  // out_neighbors_ is already sorted because edges_ is sorted by (src, dst).
  return g;
}

Digraph Digraph::CreateOrDie(int64_t num_nodes, std::vector<Edge> edges) {
  Result<Digraph> result = Create(num_nodes, std::move(edges));
  ADPA_CHECK(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

const std::vector<int64_t>& Digraph::OutNeighbors(int64_t u) const {
  ADPA_CHECK_GE(u, 0);
  ADPA_CHECK_LT(u, num_nodes_);
  return out_neighbors_[u];
}

const std::vector<int64_t>& Digraph::InNeighbors(int64_t u) const {
  ADPA_CHECK_GE(u, 0);
  ADPA_CHECK_LT(u, num_nodes_);
  return in_neighbors_[u];
}

bool Digraph::HasEdge(int64_t u, int64_t v) const {
  const std::vector<int64_t>& neighbors = OutNeighbors(u);
  return std::binary_search(neighbors.begin(), neighbors.end(), v);
}

double Digraph::ReciprocityRatio() const {
  if (edges_.empty()) return 1.0;
  int64_t reciprocal = 0;
  for (const Edge& e : edges_) {
    if (HasEdge(e.dst, e.src)) ++reciprocal;
  }
  return static_cast<double>(reciprocal) / static_cast<double>(edges_.size());
}

SparseMatrix Digraph::AdjacencyMatrix() const {
  std::vector<Triplet> triplets;
  triplets.reserve(edges_.size());
  for (const Edge& e : edges_) triplets.push_back({e.src, e.dst, 1.0f});
  return SparseMatrix::FromTriplets(num_nodes_, num_nodes_,
                                    std::move(triplets));
}

Digraph Digraph::ToUndirected() const {
  std::vector<Edge> symmetric;
  symmetric.reserve(edges_.size() * 2);
  for (const Edge& e : edges_) {
    symmetric.push_back(e);
    symmetric.push_back({e.dst, e.src});
  }
  return CreateOrDie(num_nodes_, std::move(symmetric));
}

bool Digraph::IsSymmetric() const {
  for (const Edge& e : edges_) {
    if (!HasEdge(e.dst, e.src)) return false;
  }
  return true;
}

}  // namespace adpa
