#include "src/graph/patterns.h"

#include <utility>

#include "src/core/logging.h"
#include "src/core/parallel.h"

namespace adpa {

std::string DirectedPattern::Name() const {
  if (word.empty()) return "I";
  std::string name;
  for (size_t i = 0; i < word.size(); ++i) {
    if (i > 0) name += "*";
    name += word[i] == Hop::kOut ? "A" : "AT";
  }
  return name;
}

std::vector<DirectedPattern> EnumeratePatterns(int max_order) {
  ADPA_CHECK_GE(max_order, 1);
  std::vector<DirectedPattern> patterns;
  std::vector<DirectedPattern> frontier = {DirectedPattern{}};
  for (int order = 1; order <= max_order; ++order) {
    std::vector<DirectedPattern> next;
    for (const DirectedPattern& base : frontier) {
      for (Hop hop : {Hop::kOut, Hop::kIn}) {
        DirectedPattern extended = base;
        extended.word.push_back(hop);
        next.push_back(extended);
      }
    }
    patterns.insert(patterns.end(), next.begin(), next.end());
    frontier = std::move(next);
  }
  return patterns;
}

std::vector<DirectedPattern> SecondOrderPatterns() {
  using enum Hop;
  return {
      DirectedPattern{{kOut, kOut}},  // A·A
      DirectedPattern{{kIn, kIn}},    // Aᵀ·Aᵀ
      DirectedPattern{{kOut, kIn}},   // A·Aᵀ
      DirectedPattern{{kIn, kOut}},   // Aᵀ·A
  };
}

PatternSet::PatternSet(const SparseMatrix& adjacency, double conv_r,
                       bool self_loops) {
  ADPA_CHECK_EQ(adjacency.rows(), adjacency.cols());
  const SparseMatrix base =
      self_loops ? AddSelfLoops(adjacency) : adjacency;
  a_norm_ = NormalizeConvolution(base, conv_r);
  at_norm_ = NormalizeConvolution(base.Transposed(), conv_r);
  a_raw_ = adjacency.Binarized();
  at_raw_ = a_raw_.Transposed();
}

Matrix PatternSet::ApplyHop(Hop hop, const Matrix& x) const {
  Matrix out;
  ApplyHopInto(hop, x, &out);
  return out;
}

void PatternSet::ApplyHopInto(Hop hop, const Matrix& x, Matrix* out) const {
  ADPA_CHECK_EQ(x.rows(), num_nodes())
      << "DP operand has " << x.rows() << " rows for a " << num_nodes()
      << "-node pattern set";
  (hop == Hop::kOut ? a_norm_ : at_norm_).MultiplyInto(x, out);
}

Matrix PatternSet::Apply(const DirectedPattern& pattern,
                         const Matrix& x) const {
  Matrix result = x;
  // The operator is word[0]·word[1]·…·word[L-1]; right-to-left application.
  for (auto it = pattern.word.rbegin(); it != pattern.word.rend(); ++it) {
    result = ApplyHop(*it, result);
  }
  return result;
}

void PatternSet::ApplyStep(const std::vector<DirectedPattern>& patterns,
                           std::vector<Matrix>* states) const {
  ADPA_CHECK_EQ(patterns.size(), states->size());
  ParallelFor(0, static_cast<int64_t>(patterns.size()), 1,
              [&](int64_t begin, int64_t end) {
                // Per-thread hop buffer: each hop writes into the scratch,
                // then swaps it with the state, so a steady-state step
                // performs zero allocations.
                thread_local Matrix scratch;
                for (int64_t g = begin; g < end; ++g) {
                  Matrix* state = &(*states)[g];
                  const auto& word = patterns[g].word;
                  for (auto it = word.rbegin(); it != word.rend(); ++it) {
                    ApplyHopInto(*it, *state, &scratch);
                    std::swap(*state, scratch);
                  }
                }
              });
}

SparseMatrix PatternSet::Reachability(const DirectedPattern& pattern,
                                      int64_t max_row_nnz) const {
  ADPA_CHECK_GE(pattern.order(), 1);
  const auto hop_matrix = [this](Hop hop) -> const SparseMatrix& {
    return hop == Hop::kOut ? a_raw_ : at_raw_;
  };
  SparseMatrix result = hop_matrix(pattern.word.back());
  for (auto it = std::next(pattern.word.rbegin()); it != pattern.word.rend();
       ++it) {
    result = hop_matrix(*it).MultiplySparse(result, max_row_nnz).Binarized();
  }
  return result;
}

}  // namespace adpa
