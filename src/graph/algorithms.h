#pragma once
#include <cstdint>
#include <vector>

#include "src/graph/digraph.h"

namespace adpa {

/// Weakly connected components (direction ignored). Returns a component id
/// per node, ids dense in [0, num_components).
struct ComponentLabeling {
  std::vector<int64_t> component_of;
  int64_t num_components = 0;
};
ComponentLabeling WeaklyConnectedComponents(const Digraph& graph);

/// Strongly connected components via Tarjan's algorithm (iterative).
ComponentLabeling StronglyConnectedComponents(const Digraph& graph);

/// Multi-source BFS over out-edges: hop distance from the closest source,
/// -1 if unreachable. `max_hops >= 0` truncates the search.
std::vector<int64_t> BfsDistances(const Digraph& graph,
                                  const std::vector<int64_t>& sources,
                                  int64_t max_hops = -1);

/// The set of nodes within exactly `hops` forward steps of `node`
/// (the directed k-hop out-neighborhood, excluding the node itself).
std::vector<int64_t> KHopOutNeighborhood(const Digraph& graph, int64_t node,
                                         int64_t hops);

/// Degree summary used by dataset statistics and generator validation.
struct DegreeStats {
  double mean_out = 0.0;
  double max_out = 0.0;
  double mean_in = 0.0;
  double max_in = 0.0;
  int64_t sources = 0;  ///< nodes with in-degree 0
  int64_t sinks = 0;    ///< nodes with out-degree 0
};
DegreeStats ComputeDegreeStats(const Digraph& graph);

}  // namespace adpa

