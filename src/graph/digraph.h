#pragma once
#include <cstdint>
#include <utility>
#include <vector>

#include "src/core/status.h"
#include "src/graph/sparse_matrix.h"

namespace adpa {

/// A directed edge (source -> target).
struct Edge {
  int64_t src = 0;
  int64_t dst = 0;

  friend bool operator==(const Edge& a, const Edge& b) {
    return a.src == b.src && a.dst == b.dst;
  }
  friend bool operator<(const Edge& a, const Edge& b) {
    return a.src != b.src ? a.src < b.src : a.dst < b.dst;
  }
};

/// An immutable simple digraph: node set [0, n) plus a deduplicated edge
/// list with both CSR (out-adjacency) and CSC (in-adjacency) views. Self
/// loops are rejected at construction; use AddSelfLoops on the adjacency
/// matrix when a model needs Â = A + I.
class Digraph {
 public:
  Digraph() = default;

  /// Validates and builds. Fails on out-of-range endpoints or self loops.
  /// Duplicate edges are silently coalesced (simple-graph semantics).
  static Result<Digraph> Create(int64_t num_nodes, std::vector<Edge> edges);

  /// CHECK-failing convenience for statically known-good inputs (tests).
  static Digraph CreateOrDie(int64_t num_nodes, std::vector<Edge> edges);

  int64_t num_nodes() const { return num_nodes_; }
  int64_t num_edges() const { return static_cast<int64_t>(edges_.size()); }
  const std::vector<Edge>& edges() const { return edges_; }

  /// Out-neighbors of u (targets of edges u -> v), ascending.
  const std::vector<int64_t>& OutNeighbors(int64_t u) const;
  /// In-neighbors of u (sources of edges v -> u), ascending.
  const std::vector<int64_t>& InNeighbors(int64_t u) const;

  int64_t OutDegree(int64_t u) const { return OutNeighbors(u).size(); }
  int64_t InDegree(int64_t u) const { return InNeighbors(u).size(); }

  /// True if the directed edge u -> v exists. O(log deg).
  bool HasEdge(int64_t u, int64_t v) const;

  /// Fraction of edges whose reverse edge also exists (1.0 for a graph that
  /// is already symmetric). Used to sanity-check "natural digraph" inputs.
  double ReciprocityRatio() const;

  /// Directed adjacency A_d as CSR: A_d(u, v) = 1 iff edge u -> v.
  SparseMatrix AdjacencyMatrix() const;

  /// Undirected transformation: every edge becomes a symmetric pair.
  /// This is the "coarse undirected transformation" of the paper (Sec. I).
  Digraph ToUndirected() const;

  /// True when the edge set is symmetric.
  bool IsSymmetric() const;

 private:
  int64_t num_nodes_ = 0;
  std::vector<Edge> edges_;
  std::vector<std::vector<int64_t>> out_neighbors_;
  std::vector<std::vector<int64_t>> in_neighbors_;
};

}  // namespace adpa

