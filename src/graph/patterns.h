#pragma once
#include <cstdint>
#include <string>
#include <vector>

#include "src/graph/sparse_matrix.h"
#include "src/tensor/matrix.h"

namespace adpa {

/// One first-order hop of a directed pattern: following out-edges applies
/// A_d; following in-edges applies A_dᵀ.
enum class Hop { kOut, kIn };

/// A directed pattern (DP, Sec. IV-B) is a word over {A_d, A_dᵀ}; its order
/// is the word length. Order 1 yields {A, Aᵀ}; order 2 adds the four
/// products {AA, AᵀAᵀ, AAᵀ, AᵀA} that the paper identifies as carrying
/// homophily (AAᵀ, AᵀA) vs. directional-heterophily (AA, AᵀAᵀ) signal.
struct DirectedPattern {
  std::vector<Hop> word;

  int order() const { return static_cast<int>(word.size()); }

  /// Display name, e.g. "A", "AT", "A*AT".
  std::string Name() const;

  friend bool operator==(const DirectedPattern& a, const DirectedPattern& b) {
    return a.word == b.word;
  }
};

/// All DPs with order in [1, max_order], enumerated shortest-first and in
/// {Out, In} lexicographic order. Sizes follow the paper's k = 2¹+…+2ᴺ rule:
/// max_order=1 -> 2 patterns, max_order=2 -> 6, max_order=3 -> 14, ...
std::vector<DirectedPattern> EnumeratePatterns(int max_order);

/// Just the four order-2 products used by the AMUD guidance score (Eq. 8).
std::vector<DirectedPattern> SecondOrderPatterns();

/// Precomputed single-hop operators for a digraph, from which any DP is
/// applied lazily as a chain of SpMM calls — products of sparse operators
/// are never materialized for feature propagation (complexity O(k·K·m·f),
/// Sec. IV-D). For AMUD, boolean reachability of a pattern *is* materialized
/// (sparse-sparse product with a density guard).
class PatternSet {
 public:
  /// `conv_r` selects the Eq. (1) normalization exponent applied to A and
  /// Aᵀ independently (0.5 = symmetric); `self_loops` adds Â = A + I before
  /// normalizing, the standard GCN trick the propagation operators reuse.
  PatternSet(const SparseMatrix& adjacency, double conv_r = 0.5,
             bool self_loops = true);

  int64_t num_nodes() const { return a_norm_.rows(); }

  /// Returns (G_p) x where G_p is the normalized operator product of the
  /// pattern word. For word [h0, h1, ...] the operator is G_{h0}·G_{h1}·…,
  /// so hops are applied right-to-left.
  Matrix Apply(const DirectedPattern& pattern, const Matrix& x) const;

  /// One single hop step (used by iterated K-step propagation).
  Matrix ApplyHop(Hop hop, const Matrix& x) const;

  /// ApplyHop writing into a caller-owned buffer (`out` must not alias
  /// `x`). Bitwise identical to ApplyHop; no allocation once `out` has the
  /// capacity.
  void ApplyHopInto(Hop hop, const Matrix& x, Matrix* out) const;

  /// Advances every per-pattern propagation state by one pattern
  /// application: (*states)[g] = Apply(patterns[g], (*states)[g]). The k
  /// chains are independent and run in parallel (their inner SpMM calls
  /// then run inline); results are bitwise identical to calling Apply
  /// sequentially for any thread count. Hops ping-pong between the state
  /// and a per-thread scratch buffer, so steady-state steps allocate
  /// nothing.
  void ApplyStep(const std::vector<DirectedPattern>& patterns,
                 std::vector<Matrix>* states) const;

  /// Boolean reachability matrix of the pattern over the *raw* adjacency
  /// (no self loops, unnormalized): entry (u,v)=1 iff v is reachable from u
  /// through the pattern's hop sequence. `max_row_nnz > 0` caps row fill-in.
  SparseMatrix Reachability(const DirectedPattern& pattern,
                            int64_t max_row_nnz = 0) const;

  const SparseMatrix& normalized_out() const { return a_norm_; }
  const SparseMatrix& normalized_in() const { return at_norm_; }
  const SparseMatrix& raw_out() const { return a_raw_; }
  const SparseMatrix& raw_in() const { return at_raw_; }

 private:
  SparseMatrix a_norm_;   // normalized Â
  SparseMatrix at_norm_;  // normalized Âᵀ
  SparseMatrix a_raw_;    // binarized A (no self loops)
  SparseMatrix at_raw_;   // binarized Aᵀ
};

}  // namespace adpa

