#include "src/graph/algorithms.h"

#include <algorithm>
#include <deque>

#include "src/core/logging.h"

namespace adpa {

ComponentLabeling WeaklyConnectedComponents(const Digraph& graph) {
  const int64_t n = graph.num_nodes();
  ComponentLabeling labeling;
  labeling.component_of.assign(n, -1);
  std::deque<int64_t> queue;
  for (int64_t start = 0; start < n; ++start) {
    if (labeling.component_of[start] != -1) continue;
    const int64_t component = labeling.num_components++;
    labeling.component_of[start] = component;
    queue.push_back(start);
    while (!queue.empty()) {
      const int64_t u = queue.front();
      queue.pop_front();
      for (const auto* neighbors :
           {&graph.OutNeighbors(u), &graph.InNeighbors(u)}) {
        for (int64_t v : *neighbors) {
          if (labeling.component_of[v] == -1) {
            labeling.component_of[v] = component;
            queue.push_back(v);
          }
        }
      }
    }
  }
  return labeling;
}

ComponentLabeling StronglyConnectedComponents(const Digraph& graph) {
  // Iterative Tarjan: explicit stack of (node, next-neighbor-index).
  const int64_t n = graph.num_nodes();
  ComponentLabeling labeling;
  labeling.component_of.assign(n, -1);
  std::vector<int64_t> index(n, -1), low_link(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<int64_t> scc_stack;
  int64_t next_index = 0;

  std::vector<std::pair<int64_t, size_t>> call_stack;
  for (int64_t root = 0; root < n; ++root) {
    if (index[root] != -1) continue;
    call_stack.emplace_back(root, 0);
    index[root] = low_link[root] = next_index++;
    scc_stack.push_back(root);
    on_stack[root] = true;
    while (!call_stack.empty()) {
      auto& [u, next_child] = call_stack.back();
      const auto& neighbors = graph.OutNeighbors(u);
      if (next_child < neighbors.size()) {
        const int64_t v = neighbors[next_child++];
        if (index[v] == -1) {
          index[v] = low_link[v] = next_index++;
          scc_stack.push_back(v);
          on_stack[v] = true;
          call_stack.emplace_back(v, 0);
        } else if (on_stack[v]) {
          low_link[u] = std::min(low_link[u], index[v]);
        }
      } else {
        if (low_link[u] == index[u]) {
          const int64_t component = labeling.num_components++;
          int64_t w;
          do {
            w = scc_stack.back();
            scc_stack.pop_back();
            on_stack[w] = false;
            labeling.component_of[w] = component;
          } while (w != u);
        }
        const int64_t finished = u;
        call_stack.pop_back();
        if (!call_stack.empty()) {
          const int64_t parent = call_stack.back().first;
          low_link[parent] = std::min(low_link[parent], low_link[finished]);
        }
      }
    }
  }
  return labeling;
}

std::vector<int64_t> BfsDistances(const Digraph& graph,
                                  const std::vector<int64_t>& sources,
                                  int64_t max_hops) {
  std::vector<int64_t> distance(graph.num_nodes(), -1);
  std::deque<int64_t> queue;
  for (int64_t s : sources) {
    ADPA_CHECK_GE(s, 0);
    ADPA_CHECK_LT(s, graph.num_nodes());
    if (distance[s] == -1) {
      distance[s] = 0;
      queue.push_back(s);
    }
  }
  while (!queue.empty()) {
    const int64_t u = queue.front();
    queue.pop_front();
    if (max_hops >= 0 && distance[u] >= max_hops) continue;
    for (int64_t v : graph.OutNeighbors(u)) {
      if (distance[v] == -1) {
        distance[v] = distance[u] + 1;
        queue.push_back(v);
      }
    }
  }
  return distance;
}

std::vector<int64_t> KHopOutNeighborhood(const Digraph& graph, int64_t node,
                                         int64_t hops) {
  ADPA_CHECK_GE(hops, 0);
  const std::vector<int64_t> distance = BfsDistances(graph, {node}, hops);
  std::vector<int64_t> neighborhood;
  for (int64_t v = 0; v < graph.num_nodes(); ++v) {
    if (v != node && distance[v] != -1) neighborhood.push_back(v);
  }
  return neighborhood;
}

DegreeStats ComputeDegreeStats(const Digraph& graph) {
  DegreeStats stats;
  const int64_t n = graph.num_nodes();
  if (n == 0) return stats;
  for (int64_t u = 0; u < n; ++u) {
    const double out = static_cast<double>(graph.OutDegree(u));
    const double in = static_cast<double>(graph.InDegree(u));
    stats.mean_out += out;
    stats.mean_in += in;
    stats.max_out = std::max(stats.max_out, out);
    stats.max_in = std::max(stats.max_in, in);
    stats.sources += in == 0.0;
    stats.sinks += out == 0.0;
  }
  stats.mean_out /= static_cast<double>(n);
  stats.mean_in /= static_cast<double>(n);
  return stats;
}

}  // namespace adpa
