#pragma once
#include <cstdint>
#include <iosfwd>
#include <string>

#include "src/core/status.h"
#include "src/tensor/matrix.h"

namespace adpa {

/// Checked little-endian binary (de)serialization primitives shared by the
/// checkpoint and propagation-cache formats (src/io/checkpoint.h). These are
/// the *only* sanctioned file-access surface for src/io/ and src/serve/ —
/// the `no-direct-io` lint rule rejects raw C stdio there — because every
/// read is bounds-checked and every failure is a Status, never a crash.
///
/// Format v1 stores all multi-byte values little-endian. Hosts are required
/// to be little-endian (x86-64, aarch64); a big-endian host gets a
/// FailedPrecondition from the readers/writers instead of silently mangled
/// floats.

/// True on little-endian hosts (the only ones format v1 supports).
bool HostIsLittleEndian();

/// Appends fixed-width values to an output stream. Write failures latch:
/// check `status()` once at the end instead of after every call.
class BinaryWriter {
 public:
  explicit BinaryWriter(std::ostream* out);

  void WriteBytes(const void* data, size_t size);
  void WriteU8(uint8_t value);
  void WriteU32(uint32_t value);
  void WriteU64(uint64_t value);
  void WriteI32(int32_t value);
  void WriteI64(int64_t value);
  void WriteF32(float value);
  void WriteF64(double value);

  /// Length-prefixed (u32) byte string.
  void WriteString(const std::string& text);

  /// Shape header (i64 rows, i64 cols) followed by the row-major f32 data.
  void WriteMatrix(const Matrix& matrix);

  /// OK iff the host is little-endian and no stream write failed so far.
  Status status() const { return status_; }

 private:
  std::ostream* out_;
  Status status_;
};

/// Consumes fixed-width values from an input stream. Every method returns a
/// non-OK Status on short reads or out-of-range sizes; once a read fails the
/// caller is expected to abandon the stream.
class BinaryReader {
 public:
  explicit BinaryReader(std::istream* in);

  Status ReadBytes(void* data, size_t size);
  Status ReadU8(uint8_t* value);
  Status ReadU32(uint32_t* value);
  Status ReadU64(uint64_t* value);
  Status ReadI32(int32_t* value);
  Status ReadI64(int64_t* value);
  Status ReadF32(float* value);
  Status ReadF64(double* value);

  /// Rejects strings longer than `max_size` *before* allocating.
  Status ReadString(std::string* text, uint64_t max_size);

  /// Rejects negative shapes and matrices with more than `max_entries`
  /// elements before the dense allocation (hostile-header safety, same
  /// philosophy as DatasetLimits in src/data/io.h).
  Status ReadMatrix(Matrix* matrix, int64_t max_entries);

 private:
  std::istream* in_;
};

}  // namespace adpa
