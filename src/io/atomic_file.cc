#include "src/io/atomic_file.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>  // std::rename (not on the no-direct-io ban list)
#include <cstring>

#include "src/core/failpoint.h"

namespace adpa {
namespace {

Status ErrnoStatus(const std::string& what) {
  return Status::Internal(what + ": " + std::strerror(errno));
}

std::string ParentDirectory(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

Status WriteAll(int fd, const char* data, size_t size,
                const std::string& path) {
  size_t written = 0;
  while (written < size) {
    const ssize_t n = ::write(fd, data + written, size - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("write " + path);
    }
    written += static_cast<size_t>(n);
  }
  return Status::OK();
}

}  // namespace

Status AtomicFileWriter::Commit() {
  if (committed_) {
    return Status::FailedPrecondition(
        "AtomicFileWriter::Commit called twice for " + path_);
  }
  const std::string bytes = buffer_.str();

  ADPA_FAILPOINT("atomic_file.open");
  const int fd =
      ::open(temp_path_.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return ErrnoStatus("cannot open temp file " + temp_path_);

  // Write in two halves with a crash seam between them: "process died with
  // half the payload on disk" is exactly the torn-file scenario the
  // recovery tests need to provoke on demand, and the seam makes it
  // deterministic instead of timing-dependent.
  Status status = WriteAll(fd, bytes.data(), bytes.size() / 2, temp_path_);
  if (status.ok()) {
    status = ADPA_FAILPOINT_STATUS("atomic_file.write.partial");
  }
  if (status.ok()) {
    status = WriteAll(fd, bytes.data() + bytes.size() / 2,
                      bytes.size() - bytes.size() / 2, temp_path_);
  }
  // The data must be durable *before* the rename publishes it; a rename
  // that lands ahead of the payload would resurrect the torn-file problem
  // after an OS crash.
  if (status.ok() && ::fsync(fd) != 0) {
    status = ErrnoStatus("fsync " + temp_path_);
  }
  if (::close(fd) != 0 && status.ok()) {
    status = ErrnoStatus("close " + temp_path_);
  }
  if (status.ok()) {
    status = ADPA_FAILPOINT_STATUS("atomic_file.before_rename");
  }
  if (!status.ok()) {
    ::unlink(temp_path_.c_str());  // best effort; leftovers are harmless
    return status;
  }

  if (std::rename(temp_path_.c_str(), path_.c_str()) != 0) {
    const Status renamed = ErrnoStatus("rename " + temp_path_ + " -> " + path_);
    ::unlink(temp_path_.c_str());
    return renamed;
  }
  committed_ = true;

  // Persist the directory entry. Failure here (or a crash — the
  // after_rename failpoint) is reported but the new file is already
  // complete and visible; some filesystems refuse O_DIRECTORY fsync, which
  // is not worth failing a committed write over.
  ADPA_FAILPOINT("atomic_file.after_rename");
  const int dir_fd =
      ::open(ParentDirectory(path_).c_str(), O_RDONLY | O_DIRECTORY);
  if (dir_fd >= 0) {
    ::fsync(dir_fd);
    ::close(dir_fd);
  }
  return Status::OK();
}

Status WriteFileAtomically(const std::string& path, const std::string& bytes) {
  AtomicFileWriter writer(path);
  writer.stream().write(bytes.data(),
                        static_cast<std::streamsize>(bytes.size()));
  return writer.Commit();
}

}  // namespace adpa
