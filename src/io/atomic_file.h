#pragma once
#include <sstream>
#include <string>

#include "src/core/status.h"

namespace adpa {

/// All-or-nothing file replacement (DESIGN.md §10): the payload is staged
/// in memory, then Commit runs write-to-temp → fsync → rename(2) →
/// best-effort fsync of the parent directory. POSIX rename over an existing
/// path is atomic, so a crash at *any* instant leaves either the previous
/// file or the new complete file at `path` — never a torn mix. This is what
/// makes checkpoint and propagation-cache writes crash-safe; the recovery
/// tests drive `crash` failpoints through every stage of Commit and assert
/// the old-or-new-complete invariant.
///
/// The temp file is `<path>.tmp`. A leftover temp from a crashed writer is
/// harmless (loaders never look at it) and is overwritten by the next
/// Commit against the same path.
class AtomicFileWriter {
 public:
  explicit AtomicFileWriter(std::string path)
      : path_(std::move(path)), temp_path_(path_ + ".tmp") {}

  /// The staging buffer; nothing touches the filesystem until Commit.
  std::ostream& stream() { return buffer_; }

  /// Writes the staged bytes to the temp path, fsyncs, renames over `path`,
  /// and fsyncs the parent directory. On failure the temp file is unlinked
  /// (best effort) and the destination is untouched. Single-shot: a second
  /// Commit is a FailedPrecondition.
  Status Commit();

  const std::string& path() const { return path_; }
  const std::string& temp_path() const { return temp_path_; }

 private:
  std::string path_;
  std::string temp_path_;
  std::ostringstream buffer_;
  bool committed_ = false;
};

/// One-shot convenience: stage `bytes` and Commit.
Status WriteFileAtomically(const std::string& path, const std::string& bytes);

}  // namespace adpa
