#include "src/io/checkpoint.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "src/core/failpoint.h"
#include "src/core/hash.h"
#include "src/io/atomic_file.h"
#include "src/io/binary.h"
#include "src/models/adpa.h"

namespace adpa {
namespace {

constexpr char kCheckpointMagic[8] = {'A', 'D', 'P', 'A', 'C', 'K', 'P', 'T'};
constexpr char kCacheMagic[8] = {'A', 'D', 'P', 'A', 'P', 'C', 'H', 'E'};
/// v2 appended the optional TrainState record; readers accept 1..current.
constexpr uint32_t kFormatVersion = 2;
constexpr uint32_t kMinReadableVersion = 1;

/// Human-readable container kinds for error messages, so a propagation-cache
/// failure is never misreported as a checkpoint failure.
constexpr char kCheckpointKind[] = "checkpoint";
constexpr char kCacheKind[] = "propagation cache";

Status Malformed(const char* kind, const std::string& what) {
  return Status::InvalidArgument(std::string("malformed ") + kind + ": " +
                                 what);
}

/// Wraps `payload` in the magic/version/CRC32/size container.
Status WriteContainer(const char magic[8], const std::string& payload,
                      std::ostream& out) {
  BinaryWriter writer(&out);
  writer.WriteBytes(magic, 8);
  writer.WriteU32(kFormatVersion);
  writer.WriteU32(Crc32(payload.data(), payload.size()));
  writer.WriteU64(payload.size());
  writer.WriteBytes(payload.data(), payload.size());
  ADPA_RETURN_IF_ERROR(writer.status());
  out.flush();
  if (!out.good()) return Status::Internal("stream write failed");
  return Status::OK();
}

/// Validates the container header and returns the CRC-verified payload plus
/// the (already range-checked) format version in `*version_out`.
Status ReadContainerPayload(const char magic[8], const char* kind,
                            std::istream& in, const CheckpointLimits& limits,
                            std::string* payload, uint32_t* version_out) {
  BinaryReader reader(&in);
  char file_magic[8] = {};
  Status magic_read = reader.ReadBytes(file_magic, 8);
  if (!magic_read.ok()) return Malformed(kind, "missing magic header");
  if (std::string(file_magic, 8) != std::string(magic, 8)) {
    return Malformed(kind,
                     "bad magic (not a " + std::string(magic, 8) + " file)");
  }
  uint32_t version = 0, crc = 0;
  uint64_t size = 0;
  ADPA_RETURN_IF_ERROR(reader.ReadU32(&version));
  if (version < kMinReadableVersion || version > kFormatVersion) {
    return Malformed(kind,
                     "unsupported format version " + std::to_string(version));
  }
  *version_out = version;
  ADPA_RETURN_IF_ERROR(reader.ReadU32(&crc));
  ADPA_RETURN_IF_ERROR(reader.ReadU64(&size));
  if (size > limits.max_payload_bytes) {
    return Malformed(kind, "payload size exceeds limit");
  }
  payload->resize(size);
  if (size > 0) {
    Status body = reader.ReadBytes(payload->data(), size);
    if (!body.ok()) return Malformed(kind, "truncated payload");
  }
  if (Crc32(payload->data(), payload->size()) != crc) {
    return Malformed(
        kind,
        "payload checksum mismatch (file corrupted or partially written)");
  }
  return Status::OK();
}

void WriteModelConfig(BinaryWriter* w, const ModelConfig& c) {
  w->WriteI64(c.hidden);
  w->WriteI32(c.num_layers);
  w->WriteF32(c.dropout);
  w->WriteI32(c.propagation_steps);
  w->WriteI32(c.pattern_order);
  w->WriteF64(c.conv_r);
  w->WriteF32(c.alpha);
  w->WriteF32(c.magnet_q);
  w->WriteU8(static_cast<uint8_t>(c.dp_attention));
  w->WriteU8(c.use_dp_attention ? 1 : 0);
  w->WriteU8(c.use_hop_attention ? 1 : 0);
  w->WriteU8(c.initial_residual ? 1 : 0);
  w->WriteI32(c.select_patterns);
  w->WriteU8(c.propagation_self_loops ? 1 : 0);
}

Status ReadModelConfig(BinaryReader* r, const CheckpointLimits& limits,
                       ModelConfig* c) {
  uint8_t dp_attention = 0, use_dp = 0, use_hop = 0, residual = 0,
          self_loops = 0;
  ADPA_RETURN_IF_ERROR(r->ReadI64(&c->hidden));
  ADPA_RETURN_IF_ERROR(r->ReadI32(&c->num_layers));
  ADPA_RETURN_IF_ERROR(r->ReadF32(&c->dropout));
  ADPA_RETURN_IF_ERROR(r->ReadI32(&c->propagation_steps));
  ADPA_RETURN_IF_ERROR(r->ReadI32(&c->pattern_order));
  ADPA_RETURN_IF_ERROR(r->ReadF64(&c->conv_r));
  ADPA_RETURN_IF_ERROR(r->ReadF32(&c->alpha));
  ADPA_RETURN_IF_ERROR(r->ReadF32(&c->magnet_q));
  ADPA_RETURN_IF_ERROR(r->ReadU8(&dp_attention));
  ADPA_RETURN_IF_ERROR(r->ReadU8(&use_dp));
  ADPA_RETURN_IF_ERROR(r->ReadU8(&use_hop));
  ADPA_RETURN_IF_ERROR(r->ReadU8(&residual));
  ADPA_RETURN_IF_ERROR(r->ReadI32(&c->select_patterns));
  ADPA_RETURN_IF_ERROR(r->ReadU8(&self_loops));
  // Magnitude bounds, enforced at the read boundary: these fields size
  // allocations everywhere downstream (classifier stacks, per-step blocks,
  // hidden-dim weight matrices), and a consumer-side std::max(1, ...) only
  // clamps from below.
  if (c->hidden < 0 || c->hidden > limits.max_hidden_dim) {
    return Malformed(kCheckpointKind, "hidden dimension exceeds limit");
  }
  if (c->num_layers < 0 || c->num_layers > limits.max_model_layers) {
    return Malformed(kCheckpointKind, "layer count exceeds limit");
  }
  if (c->propagation_steps < 0 ||
      c->propagation_steps > limits.max_propagation_steps) {
    return Malformed(kCheckpointKind, "propagation step count exceeds limit");
  }
  if (c->pattern_order < 0 || c->pattern_order > limits.max_pattern_order) {
    return Malformed(kCheckpointKind, "pattern order exceeds limit");
  }
  if (c->select_patterns < 0 ||
      c->select_patterns > limits.max_select_patterns) {
    return Malformed(kCheckpointKind, "selected pattern count exceeds limit");
  }
  if (dp_attention > static_cast<uint8_t>(DpAttention::kJk)) {
    return Malformed(kCheckpointKind, "dp_attention enum out of range");
  }
  c->dp_attention = static_cast<DpAttention>(dp_attention);
  c->use_dp_attention = use_dp != 0;
  c->use_hop_attention = use_hop != 0;
  c->initial_residual = residual != 0;
  c->propagation_self_loops = self_loops != 0;
  return Status::OK();
}

void WriteTrainConfig(BinaryWriter* w, const TrainConfig& c) {
  w->WriteI32(c.max_epochs);
  w->WriteI32(c.patience);
  w->WriteF32(c.learning_rate);
  w->WriteF32(c.weight_decay);
}

Status ReadTrainConfig(BinaryReader* r, TrainConfig* c) {
  ADPA_RETURN_IF_ERROR(r->ReadI32(&c->max_epochs));
  ADPA_RETURN_IF_ERROR(r->ReadI32(&c->patience));
  ADPA_RETURN_IF_ERROR(r->ReadF32(&c->learning_rate));
  ADPA_RETURN_IF_ERROR(r->ReadF32(&c->weight_decay));
  return Status::OK();
}

void WritePatterns(BinaryWriter* w,
                   const std::vector<DirectedPattern>& patterns) {
  w->WriteU32(static_cast<uint32_t>(patterns.size()));
  for (const DirectedPattern& pattern : patterns) {
    w->WriteU32(static_cast<uint32_t>(pattern.word.size()));
    for (Hop hop : pattern.word) {
      w->WriteU8(hop == Hop::kIn ? 1 : 0);
    }
  }
}

Status ReadPatterns(BinaryReader* r, const char* kind,
                    const CheckpointLimits& limits,
                    std::vector<DirectedPattern>* patterns) {
  uint32_t count = 0;
  ADPA_RETURN_IF_ERROR(r->ReadU32(&count));
  if (count > limits.max_patterns) {
    return Malformed(kind, "pattern count exceeds limit");
  }
  patterns->clear();
  patterns->reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t length = 0;
    ADPA_RETURN_IF_ERROR(r->ReadU32(&length));
    if (length == 0 || length > limits.max_pattern_length) {
      return Malformed(kind, "pattern length out of range");
    }
    DirectedPattern pattern;
    pattern.word.reserve(length);
    for (uint32_t h = 0; h < length; ++h) {
      uint8_t hop = 0;
      ADPA_RETURN_IF_ERROR(r->ReadU8(&hop));
      if (hop > 1) return Malformed(kind, "pattern hop byte out of range");
      pattern.word.push_back(hop == 1 ? Hop::kIn : Hop::kOut);
    }
    patterns->push_back(std::move(pattern));
  }
  return Status::OK();
}

void WriteCacheKey(BinaryWriter* w, const PropagationCacheKey& key) {
  w->WriteU64(key.graph_hash);
  w->WriteU64(key.feature_hash);
  w->WriteF64(key.conv_r);
  w->WriteU8(key.self_loops ? 1 : 0);
  w->WriteU8(key.initial_residual ? 1 : 0);
  w->WriteI32(key.steps);
  WritePatterns(w, key.patterns);
}

Status ReadCacheKey(BinaryReader* r, const CheckpointLimits& limits,
                    PropagationCacheKey* key) {
  uint8_t self_loops = 0, residual = 0;
  ADPA_RETURN_IF_ERROR(r->ReadU64(&key->graph_hash));
  ADPA_RETURN_IF_ERROR(r->ReadU64(&key->feature_hash));
  ADPA_RETURN_IF_ERROR(r->ReadF64(&key->conv_r));
  ADPA_RETURN_IF_ERROR(r->ReadU8(&self_loops));
  ADPA_RETURN_IF_ERROR(r->ReadU8(&residual));
  ADPA_RETURN_IF_ERROR(r->ReadI32(&key->steps));
  key->self_loops = self_loops != 0;
  key->initial_residual = residual != 0;
  return ReadPatterns(r, kCacheKind, limits, &key->patterns);
}

/// v2 training-resume record (after the tensor list; see DESIGN.md §10).
void WriteTrainState(BinaryWriter* w, const TrainState& s) {
  w->WriteI32(s.next_epoch);
  w->WriteI32(s.epochs_since_best);
  w->WriteI32(s.best_epoch);
  w->WriteF64(s.best_val_accuracy);
  w->WriteF64(s.test_accuracy);
  for (uint64_t word : s.rng.words) w->WriteU64(word);
  w->WriteU8(s.rng.has_cached_normal ? 1 : 0);
  w->WriteF64(s.rng.cached_normal);
  w->WriteI64(s.optimizer_step_count);
  w->WriteU32(static_cast<uint32_t>(s.adam_first_moment.size()));
  for (size_t i = 0; i < s.adam_first_moment.size(); ++i) {
    w->WriteMatrix(s.adam_first_moment[i]);
    w->WriteMatrix(s.adam_second_moment[i]);
  }
  w->WriteU32(static_cast<uint32_t>(s.val_curve.size()));
  for (double v : s.val_curve) w->WriteF64(v);
  w->WriteU32(static_cast<uint32_t>(s.train_loss_curve.size()));
  for (double v : s.train_loss_curve) w->WriteF64(v);
}

Status ReadTrainState(BinaryReader* r, const CheckpointLimits& limits,
                      TrainState* s) {
  uint8_t has_cached_normal = 0;
  ADPA_RETURN_IF_ERROR(r->ReadI32(&s->next_epoch));
  ADPA_RETURN_IF_ERROR(r->ReadI32(&s->epochs_since_best));
  ADPA_RETURN_IF_ERROR(r->ReadI32(&s->best_epoch));
  ADPA_RETURN_IF_ERROR(r->ReadF64(&s->best_val_accuracy));
  ADPA_RETURN_IF_ERROR(r->ReadF64(&s->test_accuracy));
  for (uint64_t& word : s->rng.words) ADPA_RETURN_IF_ERROR(r->ReadU64(&word));
  ADPA_RETURN_IF_ERROR(r->ReadU8(&has_cached_normal));
  s->rng.has_cached_normal = has_cached_normal != 0;
  ADPA_RETURN_IF_ERROR(r->ReadF64(&s->rng.cached_normal));
  ADPA_RETURN_IF_ERROR(r->ReadI64(&s->optimizer_step_count));
  if (s->next_epoch < 0 || s->epochs_since_best < 0 || s->best_epoch < 0 ||
      s->optimizer_step_count < 0) {
    return Malformed(kCheckpointKind, "negative train-state counter");
  }
  uint32_t moments = 0;
  ADPA_RETURN_IF_ERROR(r->ReadU32(&moments));
  if (moments > limits.max_tensors) {
    return Malformed(kCheckpointKind, "moment count exceeds limit");
  }
  s->adam_first_moment.reserve(moments);
  s->adam_second_moment.reserve(moments);
  for (uint32_t i = 0; i < moments; ++i) {
    Matrix first, second;
    ADPA_RETURN_IF_ERROR(r->ReadMatrix(&first, limits.max_tensor_entries));
    ADPA_RETURN_IF_ERROR(r->ReadMatrix(&second, limits.max_tensor_entries));
    s->adam_first_moment.push_back(std::move(first));
    s->adam_second_moment.push_back(std::move(second));
  }
  for (std::vector<double>* curve : {&s->val_curve, &s->train_loss_curve}) {
    uint32_t points = 0;
    ADPA_RETURN_IF_ERROR(r->ReadU32(&points));
    if (points > limits.max_curve_points) {
      return Malformed(kCheckpointKind, "curve length exceeds limit");
    }
    // Read one point at a time: a hostile count costs at most one failed
    // 8-byte read past the payload, never a count-sized allocation.
    for (uint32_t i = 0; i < points; ++i) {
      double value = 0.0;
      ADPA_RETURN_IF_ERROR(r->ReadF64(&value));
      curve->push_back(value);
    }
  }
  return Status::OK();
}

}  // namespace

Status SaveCheckpointToStream(const Checkpoint& checkpoint,
                              std::ostream& out) {
  ADPA_FAILPOINT("checkpoint.save");
  if (checkpoint.train_state.has_value() &&
      checkpoint.train_state->adam_first_moment.size() !=
          checkpoint.train_state->adam_second_moment.size()) {
    return Status::InvalidArgument(
        "train state has mismatched Adam moment vector lengths");
  }
  std::ostringstream body;
  BinaryWriter writer(&body);
  writer.WriteString(checkpoint.model_name);
  writer.WriteString(checkpoint.dataset_name);
  writer.WriteU64(checkpoint.dataset_hash);
  WriteModelConfig(&writer, checkpoint.model_config);
  WriteTrainConfig(&writer, checkpoint.train_config);
  WritePatterns(&writer, checkpoint.patterns);
  writer.WriteU32(static_cast<uint32_t>(checkpoint.tensors.size()));
  for (const NamedTensor& tensor : checkpoint.tensors) {
    writer.WriteString(tensor.name);
    writer.WriteMatrix(tensor.value);
  }
  writer.WriteU8(checkpoint.train_state.has_value() ? 1 : 0);
  if (checkpoint.train_state.has_value()) {
    WriteTrainState(&writer, *checkpoint.train_state);
  }
  ADPA_RETURN_IF_ERROR(writer.status());
  return WriteContainer(kCheckpointMagic, body.str(), out);
}

Status SaveCheckpoint(const Checkpoint& checkpoint, const std::string& path) {
  AtomicFileWriter writer(path);
  ADPA_RETURN_IF_ERROR(SaveCheckpointToStream(checkpoint, writer.stream()));
  return writer.Commit();
}

Result<Checkpoint> TryLoadCheckpointFromStream(std::istream& in,
                                               const CheckpointLimits& limits) {
  ADPA_FAILPOINT("checkpoint.load");
  std::string payload;
  uint32_t version = 0;
  ADPA_RETURN_IF_ERROR(ReadContainerPayload(kCheckpointMagic, kCheckpointKind,
                                            in, limits, &payload, &version));
  std::istringstream body(payload);
  BinaryReader reader(&body);
  Checkpoint checkpoint;
  ADPA_RETURN_IF_ERROR(
      reader.ReadString(&checkpoint.model_name, limits.max_name_bytes));
  ADPA_RETURN_IF_ERROR(
      reader.ReadString(&checkpoint.dataset_name, limits.max_name_bytes));
  ADPA_RETURN_IF_ERROR(reader.ReadU64(&checkpoint.dataset_hash));
  ADPA_RETURN_IF_ERROR(
      ReadModelConfig(&reader, limits, &checkpoint.model_config));
  ADPA_RETURN_IF_ERROR(ReadTrainConfig(&reader, &checkpoint.train_config));
  ADPA_RETURN_IF_ERROR(
      ReadPatterns(&reader, kCheckpointKind, limits, &checkpoint.patterns));
  uint32_t tensor_count = 0;
  ADPA_RETURN_IF_ERROR(reader.ReadU32(&tensor_count));
  if (tensor_count > limits.max_tensors) {
    return Malformed(kCheckpointKind, "tensor count exceeds limit");
  }
  checkpoint.tensors.reserve(tensor_count);
  for (uint32_t i = 0; i < tensor_count; ++i) {
    NamedTensor tensor;
    ADPA_RETURN_IF_ERROR(
        reader.ReadString(&tensor.name, limits.max_name_bytes));
    ADPA_RETURN_IF_ERROR(
        reader.ReadMatrix(&tensor.value, limits.max_tensor_entries));
    checkpoint.tensors.push_back(std::move(tensor));
  }
  if (version >= 2) {
    uint8_t has_train_state = 0;
    ADPA_RETURN_IF_ERROR(reader.ReadU8(&has_train_state));
    if (has_train_state > 1) {
      return Malformed(kCheckpointKind, "train-state flag out of range");
    }
    if (has_train_state == 1) {
      TrainState state;
      ADPA_RETURN_IF_ERROR(ReadTrainState(&reader, limits, &state));
      checkpoint.train_state = std::move(state);
    }
  }
  return checkpoint;
}

Result<Checkpoint> TryLoadCheckpoint(const std::string& path,
                                     const CheckpointLimits& limits) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return Status::NotFound("cannot open: " + path);
  Result<Checkpoint> result = TryLoadCheckpointFromStream(in, limits);
  if (!result.ok() &&
      result.status().code() == StatusCode::kInvalidArgument) {
    return Status::InvalidArgument(result.status().message() + " (file " +
                                   path + ")");
  }
  return result;
}

uint64_t MatrixContentHash(const Matrix& matrix) {
  Fnv1aHasher hasher;
  hasher.UpdateValue<int64_t>(matrix.rows());
  hasher.UpdateValue<int64_t>(matrix.cols());
  hasher.Update(matrix.data(),
                static_cast<size_t>(matrix.size()) * sizeof(float));
  return hasher.Digest();
}

uint64_t GraphContentHash(const Digraph& graph) {
  Fnv1aHasher hasher;
  hasher.UpdateValue<int64_t>(graph.num_nodes());
  hasher.UpdateValue<int64_t>(graph.num_edges());
  for (const Edge& edge : graph.edges()) {
    hasher.UpdateValue<int64_t>(edge.src);
    hasher.UpdateValue<int64_t>(edge.dst);
  }
  return hasher.Digest();
}

uint64_t DatasetContentHash(const Dataset& dataset) {
  Fnv1aHasher hasher;
  hasher.UpdateValue<uint64_t>(GraphContentHash(dataset.graph));
  hasher.UpdateValue<uint64_t>(MatrixContentHash(dataset.features));
  hasher.UpdateValue<int64_t>(dataset.num_classes);
  hasher.UpdateValue<uint64_t>(dataset.labels.size());
  for (int64_t label : dataset.labels) hasher.UpdateValue<int64_t>(label);
  return hasher.Digest();
}

Checkpoint MakeCheckpoint(const Model& model, const std::string& model_name,
                          const Dataset& dataset,
                          const ModelConfig& model_config,
                          const TrainConfig& train_config) {
  Checkpoint checkpoint;
  checkpoint.model_name = model_name;
  checkpoint.dataset_name = dataset.name;
  checkpoint.dataset_hash = DatasetContentHash(dataset);
  checkpoint.model_config = model_config;
  checkpoint.train_config = train_config;
  if (const auto* adpa = dynamic_cast<const AdpaModel*>(&model)) {
    checkpoint.patterns = adpa->patterns();
  }
  const std::vector<ag::Variable> params = model.Parameters();
  checkpoint.tensors.reserve(params.size());
  char name[32];
  for (size_t i = 0; i < params.size(); ++i) {
    std::snprintf(name, sizeof(name), "param_%04zu", i);
    checkpoint.tensors.push_back(NamedTensor{name, params[i].value()});
  }
  return checkpoint;
}

Status LoadCheckpointIntoModel(const Checkpoint& checkpoint, Model* model) {
  if (model == nullptr) {
    return Status::InvalidArgument("LoadCheckpointIntoModel: null model");
  }
  std::vector<ag::Variable> params = model->Parameters();
  if (params.size() != checkpoint.tensors.size()) {
    return Status::InvalidArgument(
        "checkpoint has " + std::to_string(checkpoint.tensors.size()) +
        " tensors but the model has " + std::to_string(params.size()) +
        " parameters (config or dataset mismatch)");
  }
  for (size_t i = 0; i < params.size(); ++i) {
    const Matrix& stored = checkpoint.tensors[i].value;
    if (!stored.SameShape(params[i].value())) {
      return Status::InvalidArgument(
          "tensor " + checkpoint.tensors[i].name + " shape " +
          std::to_string(stored.rows()) + "x" + std::to_string(stored.cols()) +
          " does not match the model parameter shape " +
          std::to_string(params[i].rows()) + "x" +
          std::to_string(params[i].cols()));
    }
  }
  for (size_t i = 0; i < params.size(); ++i) {
    *params[i].mutable_value() = checkpoint.tensors[i].value;
  }
  return Status::OK();
}

PropagationCacheKey MakePropagationCacheKey(
    const Dataset& dataset, const ModelConfig& config,
    const std::vector<DirectedPattern>& patterns) {
  PropagationCacheKey key;
  key.graph_hash = GraphContentHash(dataset.graph);
  key.feature_hash = MatrixContentHash(dataset.features);
  key.conv_r = config.conv_r;
  key.self_loops = config.propagation_self_loops;
  key.initial_residual = config.initial_residual;
  key.steps = std::max(1, config.propagation_steps);
  key.patterns = patterns;
  return key;
}

Status SavePropagationCacheToStream(const PropagationCache& cache,
                                    std::ostream& out) {
  ADPA_FAILPOINT("cache.save");
  std::ostringstream body;
  BinaryWriter writer(&body);
  WriteCacheKey(&writer, cache.key);
  const uint32_t steps = static_cast<uint32_t>(cache.blocks.size());
  const uint32_t per_step =
      steps == 0 ? 0 : static_cast<uint32_t>(cache.blocks[0].size());
  writer.WriteU32(steps);
  writer.WriteU32(per_step);
  for (const auto& step_blocks : cache.blocks) {
    if (step_blocks.size() != per_step) {
      return Status::InvalidArgument(
          "propagation cache is ragged (unequal blocks per step)");
    }
    for (const Matrix& block : step_blocks) writer.WriteMatrix(block);
  }
  ADPA_RETURN_IF_ERROR(writer.status());
  return WriteContainer(kCacheMagic, body.str(), out);
}

Status SavePropagationCache(const PropagationCache& cache,
                            const std::string& path) {
  AtomicFileWriter writer(path);
  ADPA_RETURN_IF_ERROR(SavePropagationCacheToStream(cache, writer.stream()));
  return writer.Commit();
}

Result<PropagationCache> TryLoadPropagationCacheFromStream(
    std::istream& in, const CheckpointLimits& limits) {
  ADPA_FAILPOINT("cache.load");
  std::string payload;
  uint32_t version = 0;
  ADPA_RETURN_IF_ERROR(ReadContainerPayload(kCacheMagic, kCacheKind, in,
                                            limits, &payload, &version));
  std::istringstream body(payload);
  BinaryReader reader(&body);
  PropagationCache cache;
  ADPA_RETURN_IF_ERROR(ReadCacheKey(&reader, limits, &cache.key));
  uint32_t steps = 0, per_step = 0;
  ADPA_RETURN_IF_ERROR(reader.ReadU32(&steps));
  ADPA_RETURN_IF_ERROR(reader.ReadU32(&per_step));
  // `steps` alone must stay under the ceiling (a per_step of 0 would
  // otherwise skip the product check and let steps drive the resize), and
  // so must the steps × per_step product (overflow-safe via division).
  if (steps > limits.max_cache_blocks ||
      (per_step != 0 && steps > limits.max_cache_blocks / per_step)) {
    return Malformed(kCacheKind, "cache block count exceeds limit");
  }
  cache.blocks.resize(steps);
  for (uint32_t l = 0; l < steps; ++l) {
    cache.blocks[l].resize(per_step);
    for (uint32_t g = 0; g < per_step; ++g) {
      ADPA_RETURN_IF_ERROR(
          reader.ReadMatrix(&cache.blocks[l][g], limits.max_tensor_entries));
    }
  }
  return cache;
}

Result<PropagationCache> TryLoadPropagationCache(
    const std::string& path, const CheckpointLimits& limits) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return Status::NotFound("cannot open: " + path);
  return TryLoadPropagationCacheFromStream(in, limits);
}

}  // namespace adpa
