#include "src/io/binary.h"

#include <bit>
#include <cstring>
#include <istream>
#include <ostream>

#include "src/core/failpoint.h"

namespace adpa {

bool HostIsLittleEndian() {
  return std::endian::native == std::endian::little;
}

BinaryWriter::BinaryWriter(std::ostream* out) : out_(out) {
  if (!HostIsLittleEndian()) {
    status_ = Status::FailedPrecondition(
        "binary format v1 requires a little-endian host");
  }
}

void BinaryWriter::WriteBytes(const void* data, size_t size) {
  if (!status_.ok()) return;
  // Injected failures latch exactly like a real stream error.
  status_ = ADPA_FAILPOINT_STATUS("binary.write");
  if (!status_.ok()) return;
  out_->write(static_cast<const char*>(data),
              static_cast<std::streamsize>(size));
  if (!out_->good()) status_ = Status::Internal("stream write failed");
}

void BinaryWriter::WriteU8(uint8_t value) { WriteBytes(&value, sizeof(value)); }
void BinaryWriter::WriteU32(uint32_t value) {
  WriteBytes(&value, sizeof(value));
}
void BinaryWriter::WriteU64(uint64_t value) {
  WriteBytes(&value, sizeof(value));
}
void BinaryWriter::WriteI32(int32_t value) {
  WriteBytes(&value, sizeof(value));
}
void BinaryWriter::WriteI64(int64_t value) {
  WriteBytes(&value, sizeof(value));
}
void BinaryWriter::WriteF32(float value) { WriteBytes(&value, sizeof(value)); }
void BinaryWriter::WriteF64(double value) {
  WriteBytes(&value, sizeof(value));
}

void BinaryWriter::WriteString(const std::string& text) {
  WriteU32(static_cast<uint32_t>(text.size()));
  WriteBytes(text.data(), text.size());
}

void BinaryWriter::WriteMatrix(const Matrix& matrix) {
  WriteI64(matrix.rows());
  WriteI64(matrix.cols());
  WriteBytes(matrix.data(),
             static_cast<size_t>(matrix.size()) * sizeof(float));
}

BinaryReader::BinaryReader(std::istream* in) : in_(in) {}

Status BinaryReader::ReadBytes(void* data, size_t size) {
  ADPA_FAILPOINT("binary.read");
  if (!HostIsLittleEndian()) {
    return Status::FailedPrecondition(
        "binary format v1 requires a little-endian host");
  }
  in_->read(static_cast<char*>(data), static_cast<std::streamsize>(size));
  if (static_cast<size_t>(in_->gcount()) != size) {
    return Status::InvalidArgument("truncated input: short read");
  }
  return Status::OK();
}

Status BinaryReader::ReadU8(uint8_t* value) {
  return ReadBytes(value, sizeof(*value));
}
Status BinaryReader::ReadU32(uint32_t* value) {
  return ReadBytes(value, sizeof(*value));
}
Status BinaryReader::ReadU64(uint64_t* value) {
  return ReadBytes(value, sizeof(*value));
}
Status BinaryReader::ReadI32(int32_t* value) {
  return ReadBytes(value, sizeof(*value));
}
Status BinaryReader::ReadI64(int64_t* value) {
  return ReadBytes(value, sizeof(*value));
}
Status BinaryReader::ReadF32(float* value) {
  return ReadBytes(value, sizeof(*value));
}
Status BinaryReader::ReadF64(double* value) {
  return ReadBytes(value, sizeof(*value));
}

Status BinaryReader::ReadString(std::string* text, uint64_t max_size) {
  uint32_t size = 0;
  ADPA_RETURN_IF_ERROR(ReadU32(&size));
  if (size > max_size) {
    return Status::InvalidArgument("string length exceeds limit");
  }
  text->resize(size);
  return size == 0 ? Status::OK() : ReadBytes(text->data(), size);
}

Status BinaryReader::ReadMatrix(Matrix* matrix, int64_t max_entries) {
  int64_t rows = 0, cols = 0;
  ADPA_RETURN_IF_ERROR(ReadI64(&rows));
  ADPA_RETURN_IF_ERROR(ReadI64(&cols));
  if (rows < 0 || cols < 0) {
    return Status::InvalidArgument("negative matrix shape");
  }
  // Overflow-safe entry ceiling, enforced before the dense allocation.
  if (cols > 0 && rows > max_entries / cols) {
    return Status::InvalidArgument("matrix exceeds entry limit");
  }
  *matrix = Matrix(rows, cols);
  if (matrix->size() == 0) return Status::OK();
  return ReadBytes(matrix->data(),
                   static_cast<size_t>(matrix->size()) * sizeof(float));
}

}  // namespace adpa
