#pragma once
#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "src/core/random.h"
#include "src/core/status.h"
#include "src/data/dataset.h"
#include "src/graph/patterns.h"
#include "src/models/model.h"
#include "src/tensor/matrix.h"
#include "src/train/trainer.h"

namespace adpa {

/// Versioned binary model persistence (DESIGN.md §9). A trained model no
/// longer dies with the process: `MakeCheckpoint` captures every trainable
/// parameter plus the full model/train hyperparameter record, `Save*` writes
/// a CRC-guarded container, and `TryLoad*` restores it with exact bit-level
/// round-trip guarantees (float32 tensors are stored raw, never formatted).
///
/// Container layout (all integers little-endian):
///
///   offset size  field
///   0      8     magic "ADPACKPT" (checkpoints) / "ADPAPCHE" (caches)
///   8      4     u32 format version (currently 2; v1 files still load)
///   12     4     u32 CRC32 (IEEE) of the payload bytes
///   16     8     u64 payload size in bytes
///   24     —     payload (see checkpoint.cc for the field-by-field layout)
///
/// Version history: v2 appends an optional training-resume record (u8
/// has_train_state + TrainState fields) after the tensor list; v1 readers
/// would reject v2 files, v2 readers accept v1 files with no train state.
///
/// Path-based `Save*` goes through AtomicFileWriter (src/io/atomic_file.h):
/// a crash mid-save leaves the previous file intact, never a torn one.
///
/// `TryLoad*` is hostile-input safe in the LoadDatasetFromStream tradition:
/// header fields are attacker-controlled until proven otherwise, so every
/// size is checked against `CheckpointLimits` *before* the allocation it
/// would drive, truncation and corruption come back as a non-OK Status
/// (never a crash), and the CRC check runs before any payload parsing.

/// Pre-allocation ceilings for checkpoint/cache loading. Defaults fit any
/// realistic model; fuzz targets pass tight limits.
struct CheckpointLimits {
  uint64_t max_payload_bytes = 1ull << 31;  ///< 2 GiB container ceiling
  uint64_t max_name_bytes = 4096;           ///< per string field
  uint32_t max_tensors = 65536;
  int64_t max_tensor_entries = 500'000'000;  ///< per tensor (2 GB of f32)
  uint32_t max_patterns = 4096;
  uint32_t max_pattern_length = 64;
  uint32_t max_cache_blocks = 4096;  ///< steps × blocks_per_step ceiling
  uint32_t max_curve_points = 1u << 20;  ///< per training-curve vector (v2)
  // ModelConfig magnitude ceilings. A checkpoint's hyperparameters size
  // downstream allocations (hidden × classes weight matrices, per-layer
  // session buffers, per-step propagation blocks), so a hostile header
  // must not be able to smuggle a 10^9 layer count past the reader; the
  // fields are bounded where they enter the process, not where they are
  // eventually multiplied into a buffer shape.
  int64_t max_hidden_dim = 1 << 16;      ///< ModelConfig::hidden
  int32_t max_model_layers = 1024;       ///< ModelConfig::num_layers
  int32_t max_propagation_steps = 4096;  ///< ModelConfig::propagation_steps
  int32_t max_pattern_order = 64;        ///< ModelConfig::pattern_order
  int32_t max_select_patterns = 1 << 16;  ///< ModelConfig::select_patterns
};

/// One named float32 tensor (a model parameter in `Parameters()` order).
struct NamedTensor {
  std::string name;
  Matrix value;
};

/// Mid-training cursor persisted by TrainConfig::checkpoint_every snapshots
/// (format v2): everything beyond the model weights that the epoch loop
/// needs to continue as if it had never stopped — optimizer moments, the
/// RNG stream, and the early-stopping bookkeeping. Restoring all of it is
/// what makes a resumed run reach bitwise-identical final weights.
struct TrainState {
  int32_t next_epoch = 0;  ///< first epoch the resumed run executes
  int32_t epochs_since_best = 0;
  int32_t best_epoch = 0;
  double best_val_accuracy = 0.0;
  double test_accuracy = 0.0;
  RngState rng;
  int64_t optimizer_step_count = 0;
  /// Adam moments in Parameters() order; the two vectors are equal-length.
  std::vector<Matrix> adam_first_moment;
  std::vector<Matrix> adam_second_moment;
  /// Curves accumulated so far (empty unless TrainConfig::record_curves).
  std::vector<double> val_curve;
  std::vector<double> train_loss_curve;
};

/// Everything needed to reconstruct a trained model next to its dataset:
/// identity (model + dataset name, dataset content fingerprint), the full
/// hyperparameter record, the DP pattern set the model actually used (which
/// may be a correlation-selected subset, Sec. IV-B), and the parameters.
struct Checkpoint {
  std::string model_name;
  std::string dataset_name;
  /// DatasetContentHash of the training dataset; loaders use it to refuse
  /// serving a checkpoint against the wrong graph.
  uint64_t dataset_hash = 0;
  ModelConfig model_config;
  TrainConfig train_config;
  std::vector<DirectedPattern> patterns;
  std::vector<NamedTensor> tensors;
  /// Present only in mid-training snapshots (TrainConfig::checkpoint_every);
  /// final checkpoints from completed runs leave it empty, so their bytes
  /// are identical whether or not the run was ever interrupted.
  std::optional<TrainState> train_state;
};

Status SaveCheckpointToStream(const Checkpoint& checkpoint,
                              std::ostream& out);
Status SaveCheckpoint(const Checkpoint& checkpoint, const std::string& path);

/// Never aborts on malformed input; every violation — bad magic, version
/// skew, truncation, CRC mismatch, limit breaches — is a non-OK Status.
ADPA_NODISCARD Result<Checkpoint> TryLoadCheckpointFromStream(
    std::istream& in, const CheckpointLimits& limits = {});
ADPA_NODISCARD Result<Checkpoint> TryLoadCheckpoint(const std::string& path,
                                     const CheckpointLimits& limits = {});

/// Content fingerprints (FNV-1a 64) for checkpoint/cache validation.
uint64_t MatrixContentHash(const Matrix& matrix);
uint64_t GraphContentHash(const Digraph& graph);
uint64_t DatasetContentHash(const Dataset& dataset);

/// Captures `model`'s current parameters plus the run's configuration into
/// a checkpoint. For ADPA models the selected DP pattern set is recorded so
/// serving replays the exact propagation (correlation-selected subsets
/// depend on training labels and cannot be re-derived at load time).
Checkpoint MakeCheckpoint(const Model& model, const std::string& model_name,
                          const Dataset& dataset,
                          const ModelConfig& model_config,
                          const TrainConfig& train_config);

/// Copies the checkpoint's tensors into `model`'s parameters (by position).
/// Fails if the parameter count or any shape disagrees — the model must be
/// constructed from the same ModelConfig and dataset dimensions.
Status LoadCheckpointIntoModel(const Checkpoint& checkpoint, Model* model);

/// Sidecar cache for the training-free K-step DP propagation (Eq. 9): the
/// expensive SpMM precompute is keyed by graph/feature content hashes plus
/// the propagation config, so a serving restart (or a retrain with frozen
/// inputs) never re-pays it. A key mismatch is a cache miss, not an error.
struct PropagationCacheKey {
  uint64_t graph_hash = 0;
  uint64_t feature_hash = 0;
  double conv_r = 0.5;
  bool self_loops = false;
  bool initial_residual = true;
  int32_t steps = 0;
  std::vector<DirectedPattern> patterns;

  friend bool operator==(const PropagationCacheKey& a,
                         const PropagationCacheKey& b) {
    return a.graph_hash == b.graph_hash && a.feature_hash == b.feature_hash &&
           a.conv_r == b.conv_r && a.self_loops == b.self_loops &&
           a.initial_residual == b.initial_residual && a.steps == b.steps &&
           a.patterns == b.patterns;
  }
};

/// The key the Eq. 9 precompute over `dataset` with `config` would use.
PropagationCacheKey MakePropagationCacheKey(
    const Dataset& dataset, const ModelConfig& config,
    const std::vector<DirectedPattern>& patterns);

/// blocks[l][g] is block g of step l, in the AdpaModel block order (the
/// initial residual X^(0) first when the key says so, then one block per
/// pattern).
struct PropagationCache {
  PropagationCacheKey key;
  std::vector<std::vector<Matrix>> blocks;
};

Status SavePropagationCacheToStream(const PropagationCache& cache,
                                    std::ostream& out);
Status SavePropagationCache(const PropagationCache& cache,
                            const std::string& path);
ADPA_NODISCARD Result<PropagationCache> TryLoadPropagationCacheFromStream(
    std::istream& in, const CheckpointLimits& limits = {});
ADPA_NODISCARD Result<PropagationCache> TryLoadPropagationCache(
    const std::string& path, const CheckpointLimits& limits = {});

}  // namespace adpa
