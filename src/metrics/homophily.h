#pragma once
#include <cstdint>
#include <vector>

#include "src/graph/digraph.h"

namespace adpa {

/// The five homophily measures the paper surveys in Sec. II-B (Table I).
/// All are computed on the graph as given: pass `graph.ToUndirected()` for
/// the undirected-transformation column of Table I and the natural digraph
/// for the directed column. For directed graphs, "neighbors" of a node are
/// its out-neighbors, matching the adjacency-row convention A_d(u, ·).
struct HomophilyReport {
  double node = 0.0;      ///< H_node (Pei et al.)
  double edge = 0.0;      ///< H_edge (Zhu et al.)
  double cls = 0.0;       ///< H_class (Lim et al.)
  double adjusted = 0.0;  ///< H_adj (Platonov et al.)
  double li = 0.0;        ///< Label informativeness (Platonov et al.)
};

/// Mean over nodes (with at least one out-neighbor) of the fraction of
/// out-neighbors sharing the node's label.
double NodeHomophily(const Digraph& graph, const std::vector<int64_t>& labels);

/// Fraction of edges whose endpoints share a label.
double EdgeHomophily(const Digraph& graph, const std::vector<int64_t>& labels);

/// Class-balanced homophily: (1/(C-1)) Σ_c max(0, h_c - n_c/n), where h_c is
/// the same-label edge fraction restricted to sources of class c.
double ClassHomophily(const Digraph& graph, const std::vector<int64_t>& labels,
                      int64_t num_classes);

/// Adjusted homophily: (H_edge - Σ_c p̄_c²) / (1 - Σ_c p̄_c²) with p̄_c the
/// degree-weighted class probability. Insensitive to class (im)balance and
/// can be negative for actively heterophilous graphs.
double AdjustedHomophily(const Digraph& graph,
                         const std::vector<int64_t>& labels,
                         int64_t num_classes);

/// Label informativeness LI = 2 - H(ξ,η)/H(ξ): how much knowing one edge
/// endpoint's label tells about the other. 1 for deterministic coupling
/// (including perfectly heterophilous-but-regular structure), 0 for
/// independence.
double LabelInformativeness(const Digraph& graph,
                            const std::vector<int64_t>& labels,
                            int64_t num_classes);

/// All five measures at once.
HomophilyReport ComputeHomophilyReport(const Digraph& graph,
                                       const std::vector<int64_t>& labels,
                                       int64_t num_classes);

}  // namespace adpa

