#include "src/metrics/homophily.h"

#include <algorithm>
#include <cmath>

#include "src/core/logging.h"

namespace adpa {
namespace {

void ValidateLabels(const Digraph& graph, const std::vector<int64_t>& labels,
                    int64_t num_classes) {
  ADPA_CHECK_EQ(static_cast<int64_t>(labels.size()), graph.num_nodes());
  for (int64_t label : labels) {
    ADPA_CHECK_GE(label, 0);
    ADPA_CHECK_LT(label, num_classes);
  }
}

}  // namespace

double NodeHomophily(const Digraph& graph,
                     const std::vector<int64_t>& labels) {
  ADPA_CHECK_EQ(static_cast<int64_t>(labels.size()), graph.num_nodes());
  double total = 0.0;
  int64_t counted = 0;
  for (int64_t u = 0; u < graph.num_nodes(); ++u) {
    const auto& neighbors = graph.OutNeighbors(u);
    if (neighbors.empty()) continue;
    int64_t same = 0;
    for (int64_t v : neighbors) same += labels[v] == labels[u];
    total += static_cast<double>(same) / static_cast<double>(neighbors.size());
    ++counted;
  }
  return counted == 0 ? 0.0 : total / static_cast<double>(counted);
}

double EdgeHomophily(const Digraph& graph,
                     const std::vector<int64_t>& labels) {
  ADPA_CHECK_EQ(static_cast<int64_t>(labels.size()), graph.num_nodes());
  if (graph.num_edges() == 0) return 0.0;
  int64_t same = 0;
  for (const Edge& e : graph.edges()) same += labels[e.src] == labels[e.dst];
  return static_cast<double>(same) / static_cast<double>(graph.num_edges());
}

double ClassHomophily(const Digraph& graph,
                      const std::vector<int64_t>& labels,
                      int64_t num_classes) {
  ValidateLabels(graph, labels, num_classes);
  ADPA_CHECK_GE(num_classes, 2);
  std::vector<int64_t> class_counts(num_classes, 0);
  for (int64_t label : labels) ++class_counts[label];
  std::vector<int64_t> same_edges(num_classes, 0);
  std::vector<int64_t> total_edges(num_classes, 0);
  for (const Edge& e : graph.edges()) {
    ++total_edges[labels[e.src]];
    same_edges[labels[e.src]] += labels[e.src] == labels[e.dst];
  }
  double score = 0.0;
  const double n = static_cast<double>(graph.num_nodes());
  for (int64_t c = 0; c < num_classes; ++c) {
    if (total_edges[c] == 0) continue;
    const double h_c = static_cast<double>(same_edges[c]) /
                       static_cast<double>(total_edges[c]);
    score += std::max(0.0, h_c - static_cast<double>(class_counts[c]) / n);
  }
  return score / static_cast<double>(num_classes - 1);
}

namespace {

/// Degree-weighted class probabilities p̄_c = D_c / Σ D, where D_c sums the
/// total degree (in + out) of class-c nodes.
std::vector<double> DegreeWeightedClassProbs(
    const Digraph& graph, const std::vector<int64_t>& labels,
    int64_t num_classes) {
  std::vector<double> degree_mass(num_classes, 0.0);
  double total = 0.0;
  for (int64_t u = 0; u < graph.num_nodes(); ++u) {
    const double degree =
        static_cast<double>(graph.OutDegree(u) + graph.InDegree(u));
    degree_mass[labels[u]] += degree;
    total += degree;
  }
  if (total > 0.0) {
    for (double& mass : degree_mass) mass /= total;
  }
  return degree_mass;
}

}  // namespace

double AdjustedHomophily(const Digraph& graph,
                         const std::vector<int64_t>& labels,
                         int64_t num_classes) {
  ValidateLabels(graph, labels, num_classes);
  const double h_edge = EdgeHomophily(graph, labels);
  const std::vector<double> probs =
      DegreeWeightedClassProbs(graph, labels, num_classes);
  double expected = 0.0;
  for (double p : probs) expected += p * p;
  const double denom = 1.0 - expected;
  if (std::fabs(denom) < 1e-12) return 0.0;
  return (h_edge - expected) / denom;
}

double LabelInformativeness(const Digraph& graph,
                            const std::vector<int64_t>& labels,
                            int64_t num_classes) {
  ValidateLabels(graph, labels, num_classes);
  if (graph.num_edges() == 0) return 0.0;
  // Joint distribution of endpoint labels over a uniformly random edge,
  // symmetrized (each directed edge contributes both orientations).
  std::vector<double> joint(num_classes * num_classes, 0.0);
  const double mass = 0.5 / static_cast<double>(graph.num_edges());
  for (const Edge& e : graph.edges()) {
    joint[labels[e.src] * num_classes + labels[e.dst]] += mass;
    joint[labels[e.dst] * num_classes + labels[e.src]] += mass;
  }
  std::vector<double> marginal(num_classes, 0.0);
  for (int64_t a = 0; a < num_classes; ++a) {
    for (int64_t b = 0; b < num_classes; ++b) {
      marginal[a] += joint[a * num_classes + b];
    }
  }
  double joint_entropy = 0.0;
  for (double p : joint) {
    if (p > 0.0) joint_entropy -= p * std::log(p);
  }
  double marginal_entropy = 0.0;
  for (double p : marginal) {
    if (p > 0.0) marginal_entropy -= p * std::log(p);
  }
  if (marginal_entropy < 1e-12) return 0.0;
  return 2.0 - joint_entropy / marginal_entropy;
}

HomophilyReport ComputeHomophilyReport(const Digraph& graph,
                                       const std::vector<int64_t>& labels,
                                       int64_t num_classes) {
  HomophilyReport report;
  report.node = NodeHomophily(graph, labels);
  report.edge = EdgeHomophily(graph, labels);
  report.cls = ClassHomophily(graph, labels, num_classes);
  report.adjusted = AdjustedHomophily(graph, labels, num_classes);
  report.li = LabelInformativeness(graph, labels, num_classes);
  return report;
}

}  // namespace adpa
