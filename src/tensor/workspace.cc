#include "src/tensor/workspace.h"

namespace adpa {

Matrix* Workspace::Acquire(int64_t rows, int64_t cols) {
  if (next_ == slots_.size()) {
    // Slot-pool growth: only the first pass at a new high-water shape
    // allocates; Reset() rewinds without releasing capacity.
    slots_.push_back(std::make_unique<Matrix>(rows, cols));  // analyze:allow(alloc): slot-pool growth
    return slots_[next_++].get();
  }
  Matrix* slot = slots_[next_++].get();
  slot->Resize(rows, cols);
  return slot;
}

}  // namespace adpa
