#include "src/tensor/workspace.h"

namespace adpa {

Matrix* Workspace::Acquire(int64_t rows, int64_t cols) {
  if (next_ == slots_.size()) {
    slots_.push_back(std::make_unique<Matrix>(rows, cols));
    return slots_[next_++].get();
  }
  Matrix* slot = slots_[next_++].get();
  slot->Resize(rows, cols);
  return slot;
}

}  // namespace adpa
