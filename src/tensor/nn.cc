#include "src/tensor/nn.h"

#include <cmath>

#include "src/core/logging.h"
#include "src/core/random.h"

namespace adpa {
namespace nn {

Matrix GlorotUniform(int64_t fan_in, int64_t fan_out, Rng* rng) {
  const float limit =
      std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  return Matrix::RandomUniform(fan_in, fan_out, rng, -limit, limit);
}

Matrix KaimingNormal(int64_t fan_in, int64_t fan_out, Rng* rng) {
  const float stddev = std::sqrt(2.0f / static_cast<float>(fan_in));
  return Matrix::RandomNormal(fan_in, fan_out, rng, 0.0f, stddev);
}

Linear::Linear(int64_t in_features, int64_t out_features, Rng* rng,
               bool bias) {
  ADPA_CHECK_GT(in_features, 0);
  ADPA_CHECK_GT(out_features, 0);
  weight_ = ag::Parameter(GlorotUniform(in_features, out_features, rng));
  if (bias) bias_ = ag::Parameter(Matrix(1, out_features));
}

ag::Variable Linear::Forward(const ag::Variable& x) const {
  ADPA_CHECK(weight_.defined());
  ag::Variable out = ag::MatMul(x, weight_);
  if (bias_.defined()) out = ag::AddBias(out, bias_);
  return out;
}

std::vector<ag::Variable> Linear::Parameters() const {
  std::vector<ag::Variable> params = {weight_};
  if (bias_.defined()) params.push_back(bias_);
  return params;
}

ag::Variable ApplyActivation(const ag::Variable& x, Activation activation) {
  switch (activation) {
    case Activation::kRelu:
      return ag::Relu(x);
    case Activation::kLeakyRelu:
      return ag::LeakyRelu(x);
    case Activation::kSigmoid:
      return ag::Sigmoid(x);
    case Activation::kTanh:
      return ag::Tanh(x);
    case Activation::kNone:
      return x;
  }
  return x;
}

Mlp::Mlp(int64_t in_features, int64_t hidden, int64_t out_features,
         int num_layers, Rng* rng, float dropout, Activation activation)
    : dropout_(dropout), activation_(activation) {
  ADPA_CHECK_GE(num_layers, 1);
  if (num_layers == 1) {
    layers_.emplace_back(in_features, out_features, rng);
    return;
  }
  layers_.emplace_back(in_features, hidden, rng);
  for (int i = 0; i < num_layers - 2; ++i) {
    layers_.emplace_back(hidden, hidden, rng);
  }
  layers_.emplace_back(hidden, out_features, rng);
}

ag::Variable Mlp::Forward(const ag::Variable& x, bool training,
                          Rng* rng) const {
  ADPA_CHECK(!layers_.empty());
  ag::Variable h = x;
  for (size_t i = 0; i < layers_.size(); ++i) {
    h = layers_[i].Forward(h);
    if (i + 1 < layers_.size()) {
      h = ApplyActivation(h, activation_);
      h = ag::Dropout(h, dropout_, training, rng);
    }
  }
  return h;
}

std::vector<ag::Variable> Mlp::Parameters() const {
  std::vector<ag::Variable> params;
  for (const Linear& layer : layers_) {
    for (const ag::Variable& p : layer.Parameters()) params.push_back(p);
  }
  return params;
}

}  // namespace nn
}  // namespace adpa
