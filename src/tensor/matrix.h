#pragma once
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/core/logging.h"
#include "src/core/parallel.h"

namespace adpa {

class Rng;

/// Minimum elements per ParallelFor chunk for O(1)-per-element loops:
/// enough elements that a chunk amortizes the pool hand-off
/// (kMinCostPerChunk scalar ops). Sub-grain spans run inline — on the serve
/// path every per-batch elementwise op is far below this, which is exactly
/// the point (fanning out sub-millisecond ops cost more than it bought).
inline constexpr int64_t kElementwiseGrain = GrainForCost(1);

/// Dense row-major float32 matrix. This is the single dense container used
/// by the autograd engine, the models, and the data generators. Kernels are
/// BLAS-free but cache-blocked and multithreaded via `ParallelFor`
/// (src/core/parallel.h): work is always partitioned over *output*
/// elements, so every kernel produces bitwise-identical results for any
/// thread count.
class Matrix {
 public:
  /// Empty 0x0 matrix.
  Matrix() : rows_(0), cols_(0) {}

  /// Zero-initialized rows x cols matrix.
  Matrix(int64_t rows, int64_t cols);

  /// Matrix filled with `fill`.
  Matrix(int64_t rows, int64_t cols, float fill);

  /// Builds from nested initializer data; all rows must have equal length.
  static Matrix FromRows(const std::vector<std::vector<float>>& rows);

  /// rows x cols with i.i.d. N(mean, stddev) entries.
  static Matrix RandomNormal(int64_t rows, int64_t cols, Rng* rng,
                             float mean = 0.0f, float stddev = 1.0f);

  /// rows x cols with i.i.d. U[lo, hi) entries.
  static Matrix RandomUniform(int64_t rows, int64_t cols, Rng* rng, float lo,
                              float hi);

  /// Identity matrix of size n.
  static Matrix Identity(int64_t n);

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }
  int64_t size() const { return rows_ * cols_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }

  /// Unchecked in Release; debug / sanitizer builds (ADPA_DCHECK_IS_ON)
  /// bounds-check every access.
  float& At(int64_t r, int64_t c) {
    DcheckIndex(r, c);
    return data_[r * cols_ + c];
  }
  float At(int64_t r, int64_t c) const {
    DcheckIndex(r, c);
    return data_[r * cols_ + c];
  }

  /// Bounds-checked accessor (aborts on violation); hot paths use At().
  float& CheckedAt(int64_t r, int64_t c);

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  float* Row(int64_t r) {
    DcheckRow(r);
    return data_.data() + r * cols_;
  }
  const float* Row(int64_t r) const {
    DcheckRow(r);
    return data_.data() + r * cols_;
  }

  /// Sets every entry to `value`.
  void Fill(float value);

  /// Reshapes to rows x cols and zeroes every element. Shrinks or grows the
  /// logical shape but never releases capacity, so re-Resizing a buffer to a
  /// shape it has held before performs no allocation (the workspace pool and
  /// the *Into kernels rely on this for allocation-free steady state).
  void Resize(int64_t rows, int64_t cols);

  /// Elementwise in-place updates (parallel; each element is written by
  /// exactly one thread, so results are thread-count independent).
  void AddInPlace(const Matrix& other);
  void SubInPlace(const Matrix& other);
  void MulInPlace(const Matrix& other);  // Hadamard
  void ScaleInPlace(float factor);
  void AddScaledInPlace(const Matrix& other, float factor);  // this += f*other

  /// Applies `fn` to every entry in place. Pays one type-erased
  /// std::function call per element; hot paths should use ApplyFn.
  void Apply(const std::function<float(float)>& fn);

  /// Templated Apply: `fn` is inlined into the elementwise loop (no
  /// per-element call overhead) and the loop runs in parallel. `fn` must be
  /// a pure elementwise map (no shared mutable state).
  template <typename Fn>
  void ApplyFn(Fn&& fn) {
    float* values = data_.data();
    ParallelFor(0, size(), kElementwiseGrain,
                [values, &fn](int64_t begin, int64_t end) {
                  for (int64_t i = begin; i < end; ++i) {
                    values[i] = fn(values[i]);
                  }
                });
  }

  /// Reduction helpers. Intentionally serial: a parallel reduction's
  /// combine order would depend on the chunk layout and break the
  /// "bitwise identical for any thread count" contract.
  float SumAll() const;
  float MaxAll() const;
  float FrobeniusNorm() const;

  /// Returns the transpose.
  Matrix Transposed() const;

  /// Returns rows [begin, end) as a new matrix.
  Matrix SliceRows(int64_t begin, int64_t end) const;

  /// Human-readable rendering for debugging/tests.
  std::string ToString(int max_rows = 8, int max_cols = 8) const;

  bool SameShape(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  /// Aborts if any entry is NaN or ±Inf; `context` names the tensor in the
  /// failure message. Always compiled in — the trainer exposes it behind
  /// TrainConfig::check_finite so numerical-drift hunts can gate every step
  /// without a rebuild.
  void CheckFinite(const char* context) const;

 private:
  void DcheckIndex(int64_t r, int64_t c) const {
    ADPA_DCHECK_GE(r, 0);
    ADPA_DCHECK_LT(r, rows_);
    ADPA_DCHECK_GE(c, 0);
    ADPA_DCHECK_LT(c, cols_);
  }
  // Row(rows()) is allowed as an end pointer for [Row(r), Row(r+1)) spans.
  void DcheckRow(int64_t r) const {
    ADPA_DCHECK_GE(r, 0);
    ADPA_DCHECK_LE(r, rows_);
  }

  int64_t rows_;
  int64_t cols_;
  std::vector<float> data_;
};

/// Dense matmul family.
///
/// Precision contract: every member accumulates each output element in a
/// `double`, scanning the contraction dimension in increasing index order,
/// with a single final round to float32. All members therefore share one
/// numerical behaviour (the seed kernels mixed float and double
/// accumulators), and because work is partitioned over disjoint *output*
/// panels, multithreaded results are bitwise identical to single-threaded
/// ones for any thread count.

/// out = a * b. Shapes must agree (a.cols == b.rows). Routed through the
/// active SIMD level's micro-kernel (simd::Kernels().gemm_rows); see the
/// KernelTable doc for the per-level accumulation discipline. Bitwise
/// thread-count invariant at every level.
Matrix MatMul(const Matrix& a, const Matrix& b);

/// MatMul writing into a caller-owned buffer (resized to a.rows x b.cols;
/// no allocation once `out` has the capacity). `out` must not alias `a` or
/// `b`. Bitwise identical to MatMul.
void MatMulInto(const Matrix& a, const Matrix& b, Matrix* out);

/// out = a * b for an `a` with many exact zeros (masked/one-hot rows):
/// row-major traversal that skips the inner loop whenever a(i,p) == 0.
/// Keeps the historical one-double-chain-per-element accumulation at every
/// level, so it is bitwise-identical to MatMul at the levels that share
/// that discipline (portable, AVX2; a zero term contributes exactly nothing
/// to a double accumulator). The AVX-512 MatMul accumulates float runs
/// (simd::KernelTable::gemm_rows), so there the two agree to rel-error
/// only. Prefer this routine only when `a` is sparse enough that branch
/// savings beat the blocked kernel.
Matrix MatMulSparseA(const Matrix& a, const Matrix& b);

/// out = aᵀ * b, computed without materializing aᵀ.
Matrix MatMulTransposeA(const Matrix& a, const Matrix& b);

/// out = a * bᵀ, computed without materializing bᵀ.
Matrix MatMulTransposeB(const Matrix& a, const Matrix& b);

/// Elementwise binary operations returning new matrices.
Matrix Add(const Matrix& a, const Matrix& b);
Matrix Sub(const Matrix& a, const Matrix& b);
Matrix Hadamard(const Matrix& a, const Matrix& b);
Matrix Scale(const Matrix& a, float factor);

/// Column-wise concatenation: [a | b]. Row counts must match.
Matrix ConcatCols(const Matrix& a, const Matrix& b);
Matrix ConcatCols(const std::vector<Matrix>& parts);

/// ConcatCols over borrowed parts, writing into a caller-owned buffer.
/// `out` must not alias any part.
void ConcatColsInto(const std::vector<const Matrix*>& parts, Matrix* out);

/// Broadcasts a 1 x cols row vector over every row of `a` (addition).
Matrix AddRowBroadcast(const Matrix& a, const Matrix& row);

/// In-place row-vector broadcast add: a->Row(r) += row for every r.
void AddRowBroadcastInPlace(Matrix* a, const Matrix& row);

/// Row-wise softmax (parallel over rows; per-row math unchanged).
Matrix SoftmaxRows(const Matrix& a);

/// SoftmaxRows writing into a caller-owned buffer (must not alias `a`).
void SoftmaxRowsInto(const Matrix& a, Matrix* out);

/// Scales row r of `a` by scales(r, 0). `scales` must be a.rows() x 1.
/// Shared by the autograd ScaleRows forward and the no-tape serving path so
/// both produce bitwise-identical values.
Matrix ScaleRows(const Matrix& a, const Matrix& scales);

/// ScaleRows writing into a caller-owned buffer (must not alias `a`).
void ScaleRowsInto(const Matrix& a, const Matrix& scales, Matrix* out);

/// Returns columns [begin, end) as a new matrix.
Matrix SliceCols(const Matrix& a, int64_t begin, int64_t end);

/// SliceCols writing into a caller-owned buffer (must not alias `a`).
void SliceColsInto(const Matrix& a, int64_t begin, int64_t end, Matrix* out);

/// Returns the given rows of `a`, in order (duplicates allowed). Every row
/// index must lie in [0, a.rows()).
Matrix GatherRows(const Matrix& a, const std::vector<int64_t>& rows);

/// GatherRows writing into a caller-owned buffer (must not alias `a`).
void GatherRowsInto(const Matrix& a, const std::vector<int64_t>& rows,
                    Matrix* out);

/// True when all entries differ by at most `tolerance`.
bool AllClose(const Matrix& a, const Matrix& b, float tolerance = 1e-5f);

}  // namespace adpa

