#pragma once
#include <cstdint>

#include "src/core/thread_annotations.h"
#include "src/tensor/simd.h"

/// Internal: per-level kernel tables and the portable entry points the
/// higher levels reuse for ops where wider lanes add nothing (plain
/// copies). Only simd.cc and the kernels_*.cc implementation files include
/// this; everything else goes through simd::Kernels().

namespace adpa::simd::detail {

extern const KernelTable kPortableTable;
extern const KernelTable kAvx2Table;
extern const KernelTable kAvx512Table;

// Portable implementations (kernels_portable.cc). These are the historical
// matrix.cc / sparse_matrix.cc inner loops, moved verbatim; the portable
// table is built from exactly these, so the `portable` level behaves as the
// pre-dispatch kernels did.
ADPA_HOT void GemmRowsPortable(const float* a, const double* ad, const float* b,
                      int64_t i_begin, int64_t i_end, int64_t k, int64_t m,
                      float* out);
ADPA_HOT double DotPortable(const float* a, const float* b, int64_t k);
ADPA_HOT void AxpyWidePortable(double w, const float* x, int64_t m, double* acc);
ADPA_HOT void SpmmRowsPortable(const int64_t* row_ptr, const int32_t* col_idx,
                      const float* values, const float* dense, int64_t cols,
                      int64_t row_begin, int64_t row_end, float* out);
ADPA_HOT void SpmmAxpbyRowsPortable(const int64_t* row_ptr, const int32_t* col_idx,
                           const float* values, const float* dense,
                           const float* residual, float alpha, float beta,
                           int64_t cols, int64_t row_begin, int64_t row_end,
                           float* out);
ADPA_HOT void AddPortable(float* dst, const float* src, int64_t n);
ADPA_HOT void SubPortable(float* dst, const float* src, int64_t n);
ADPA_HOT void MulPortable(float* dst, const float* src, int64_t n);
ADPA_HOT void ScalePortable(float* dst, float factor, int64_t n);
ADPA_HOT void AxpyPortable(float* dst, const float* src, float factor, int64_t n);
ADPA_HOT void ScaleToPortable(float* dst, const float* src, float factor, int64_t n);
ADPA_HOT void CopyPortable(float* dst, const float* src, int64_t n);

}  // namespace adpa::simd::detail
