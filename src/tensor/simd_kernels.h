#pragma once
#include <cstdint>

#include "src/tensor/simd.h"

/// Internal: per-level kernel tables and the portable entry points the
/// higher levels reuse for ops where wider lanes add nothing (plain
/// copies). Only simd.cc and the kernels_*.cc implementation files include
/// this; everything else goes through simd::Kernels().

namespace adpa::simd::detail {

extern const KernelTable kPortableTable;
extern const KernelTable kAvx2Table;
extern const KernelTable kAvx512Table;

// Portable implementations (kernels_portable.cc). These are the historical
// matrix.cc / sparse_matrix.cc inner loops, moved verbatim; the portable
// table is built from exactly these, so the `portable` level behaves as the
// pre-dispatch kernels did.
void GemmRowsPortable(const float* a, const double* ad, const float* b,
                      int64_t i_begin, int64_t i_end, int64_t k, int64_t m,
                      float* out);
double DotPortable(const float* a, const float* b, int64_t k);
void AxpyWidePortable(double w, const float* x, int64_t m, double* acc);
void SpmmRowsPortable(const int64_t* row_ptr, const int32_t* col_idx,
                      const float* values, const float* dense, int64_t cols,
                      int64_t row_begin, int64_t row_end, float* out);
void SpmmAxpbyRowsPortable(const int64_t* row_ptr, const int32_t* col_idx,
                           const float* values, const float* dense,
                           const float* residual, float alpha, float beta,
                           int64_t cols, int64_t row_begin, int64_t row_end,
                           float* out);
void AddPortable(float* dst, const float* src, int64_t n);
void SubPortable(float* dst, const float* src, int64_t n);
void MulPortable(float* dst, const float* src, int64_t n);
void ScalePortable(float* dst, float factor, int64_t n);
void AxpyPortable(float* dst, const float* src, float factor, int64_t n);
void ScaleToPortable(float* dst, const float* src, float factor, int64_t n);
void CopyPortable(float* dst, const float* src, int64_t n);

}  // namespace adpa::simd::detail
