#pragma once
#include <cstdint>
#include <vector>

#include "src/core/status.h"
#include "src/tensor/autograd.h"
#include "src/tensor/matrix.h"

namespace adpa {

/// Base interface for first-order optimizers over autograd parameters.
class Optimizer {
 public:
  explicit Optimizer(std::vector<ag::Variable> parameters)
      : parameters_(std::move(parameters)) {}
  virtual ~Optimizer() = default;

  Optimizer(const Optimizer&) = delete;
  Optimizer& operator=(const Optimizer&) = delete;

  /// Applies one update using the gradients accumulated on the parameters.
  virtual void Step() = 0;

  /// Clears all parameter gradients.
  void ZeroGrad();

  const std::vector<ag::Variable>& parameters() const { return parameters_; }

 protected:
  std::vector<ag::Variable> parameters_;
};

/// Plain SGD with optional L2 weight decay.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<ag::Variable> parameters, float learning_rate,
      float weight_decay = 0.0f);

  void Step() override;

 private:
  float learning_rate_;
  float weight_decay_;
};

/// Adam's full internal state: the step counter that drives the bias
/// correction plus one pair of per-parameter moment matrices. Exporting and
/// restoring it mid-run is what makes training resume bitwise-exact
/// (src/train/trainer.h) — resuming with zeroed moments would converge to
/// different weights.
struct AdamState {
  int64_t step_count = 0;
  std::vector<Matrix> first_moment;
  std::vector<Matrix> second_moment;
};

/// Adam (Kingma & Ba) with decoupled-free classic L2 weight decay, matching
/// the configuration typically used to train GNN baselines.
class Adam : public Optimizer {
 public:
  Adam(std::vector<ag::Variable> parameters, float learning_rate,
       float weight_decay = 0.0f, float beta1 = 0.9f, float beta2 = 0.999f,
       float epsilon = 1e-8f);

  void Step() override;

  /// Deep copy of the moments and step counter.
  AdamState ExportState() const;

  /// Shape-checked restore; the state must come from an Adam over the same
  /// parameter list (count and shapes must match exactly).
  Status RestoreState(AdamState state);

 private:
  float learning_rate_;
  float weight_decay_;
  float beta1_;
  float beta2_;
  float epsilon_;
  int64_t step_count_ = 0;
  std::vector<Matrix> first_moment_;
  std::vector<Matrix> second_moment_;
};

}  // namespace adpa

