#pragma once
#include <vector>

#include "src/tensor/autograd.h"
#include "src/tensor/matrix.h"

namespace adpa {

/// Base interface for first-order optimizers over autograd parameters.
class Optimizer {
 public:
  explicit Optimizer(std::vector<ag::Variable> parameters)
      : parameters_(std::move(parameters)) {}
  virtual ~Optimizer() = default;

  Optimizer(const Optimizer&) = delete;
  Optimizer& operator=(const Optimizer&) = delete;

  /// Applies one update using the gradients accumulated on the parameters.
  virtual void Step() = 0;

  /// Clears all parameter gradients.
  void ZeroGrad();

  const std::vector<ag::Variable>& parameters() const { return parameters_; }

 protected:
  std::vector<ag::Variable> parameters_;
};

/// Plain SGD with optional L2 weight decay.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<ag::Variable> parameters, float learning_rate,
      float weight_decay = 0.0f);

  void Step() override;

 private:
  float learning_rate_;
  float weight_decay_;
};

/// Adam (Kingma & Ba) with decoupled-free classic L2 weight decay, matching
/// the configuration typically used to train GNN baselines.
class Adam : public Optimizer {
 public:
  Adam(std::vector<ag::Variable> parameters, float learning_rate,
       float weight_decay = 0.0f, float beta1 = 0.9f, float beta2 = 0.999f,
       float epsilon = 1e-8f);

  void Step() override;

 private:
  float learning_rate_;
  float weight_decay_;
  float beta1_;
  float beta2_;
  float epsilon_;
  int64_t step_count_ = 0;
  std::vector<Matrix> first_moment_;
  std::vector<Matrix> second_moment_;
};

}  // namespace adpa

