// AVX-512F kernel level (512-bit lanes). Compiled with -mavx512f (plus the
// AVX2/FMA baseline) regardless of the global architecture flags; runtime
// dispatch guarantees these functions only execute on AVX-512 CPUs.
//
// Dense GEMM precision discipline at this level: fixed kKChunk-step runs of
// the contraction accumulate in 16-wide float32 FMAs (twice the double FMA
// throughput), and each completed run is folded into per-element double
// accumulators — the unbounded-k direction still accumulates in double, so
// rounding error stays bounded by the fixed run length instead of growing
// with k. The per-element order is a pure function of shapes (bitwise
// thread-count invariant within the level; rel-error vs. the other levels).

#include <cstdint>

#include "src/core/thread_annotations.h"
#include "src/tensor/simd_kernels.h"

#if defined(__x86_64__) || defined(_M_X64)
#include <immintrin.h>

// GCC expands the float<->double conversion intrinsics through
// _mm512_undefined_pd()/_mm256_undefined_ps(), whose self-initialized
// placeholder trips -Wmaybe-uninitialized (or plain -Wuninitialized,
// depending on what the optimizer can prove) at every inlined call site
// even though the masked builtin overwrites all lanes (GCC PR105593).
// Silence the false positive for this kernel TU.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#pragma GCC diagnostic ignored "-Wuninitialized"
#endif

#include <algorithm>
#include <vector>

namespace adpa::simd::detail {
namespace {

// GEMM register tile: 8 output rows x 32 output columns = 16 zmm float
// accumulators, plus 2 b-row lanes and 1 broadcast — within the 32-register
// AVX-512 budget. The per-element double accumulators live in a small
// stack buffer touched only once per kKChunk contraction steps.
constexpr int64_t kMr = 8;
constexpr int64_t kNr = 32;

// Fixed float-accumulation run length. Every output element accumulates
// products p in [c*kKChunk, (c+1)*kKChunk) in float32 (single-rounding FMA
// per step), then folds the run into its double accumulator. The constant
// is part of the level's determinism contract: the chunk boundaries depend
// on k alone, never on the row/thread partition.
constexpr int64_t kKChunk = 128;

// dacc[0..15] += double(facc lane) for one 16-float accumulator. The lane
// split is float->double widening (exact) plus a double add: per element
// this is indistinguishable from a scalar `dacc += (double)facc`.
inline void SpillChunk(__m512 facc, double* dacc) {
  const __m256 lo = _mm512_castps512_ps256(facc);
  const __m256 hi =
      _mm512_castps512_ps256(_mm512_shuffle_f32x4(facc, facc, 0xEE));
  _mm512_storeu_pd(dacc + 0, _mm512_add_pd(_mm512_loadu_pd(dacc + 0),
                                           _mm512_cvtps_pd(lo)));
  _mm512_storeu_pd(dacc + 8, _mm512_add_pd(_mm512_loadu_pd(dacc + 8),
                                           _mm512_cvtps_pd(hi)));
}

// Full 8x32 register tile: rows [i0, i0+8), columns [j0, j0+32).
void Tile8x32(const float* a, const float* b, int64_t i0, int64_t j0,
              int64_t k, int64_t m, float* out) {
  alignas(64) double dacc[kMr * kNr] = {};
  for (int64_t p0 = 0; p0 < k; p0 += kKChunk) {
    const int64_t p_end = std::min<int64_t>(k, p0 + kKChunk);
    __m512 f[kMr][2];
    for (int r = 0; r < kMr; ++r) {
      f[r][0] = _mm512_setzero_ps();
      f[r][1] = _mm512_setzero_ps();
    }
    for (int64_t p = p0; p < p_end; ++p) {
      const float* b_row = b + p * m + j0;
      const __m512 b0 = _mm512_loadu_ps(b_row);
      const __m512 b1 = _mm512_loadu_ps(b_row + 16);
      for (int r = 0; r < kMr; ++r) {
        const __m512 av = _mm512_set1_ps(a[(i0 + r) * k + p]);
        f[r][0] = _mm512_fmadd_ps(av, b0, f[r][0]);
        f[r][1] = _mm512_fmadd_ps(av, b1, f[r][1]);
      }
    }
    for (int r = 0; r < kMr; ++r) {
      SpillChunk(f[r][0], dacc + r * kNr);
      SpillChunk(f[r][1], dacc + r * kNr + 16);
    }
  }
  for (int r = 0; r < kMr; ++r) {
    float* out_row = out + (i0 + r) * m + j0;
    const double* acc_row = dacc + r * kNr;
    for (int v = 0; v < 4; ++v) {
      _mm256_storeu_ps(out_row + 8 * v,
                       _mm512_cvtpd_ps(_mm512_loadu_pd(acc_row + 8 * v)));
    }
  }
}

// Single-row variant over a 32-column block: the row-tail path. Per output
// element this is the exact chunk/FMA chain of Tile8x32, so any row
// partition of the panel produces identical bits.
void Tile1x32(const float* a_row, const float* b, int64_t j0, int64_t k,
              int64_t m, float* out_row) {
  alignas(64) double dacc[kNr] = {};
  for (int64_t p0 = 0; p0 < k; p0 += kKChunk) {
    const int64_t p_end = std::min<int64_t>(k, p0 + kKChunk);
    __m512 f0 = _mm512_setzero_ps();
    __m512 f1 = _mm512_setzero_ps();
    for (int64_t p = p0; p < p_end; ++p) {
      const float* b_row = b + p * m + j0;
      const __m512 av = _mm512_set1_ps(a_row[p]);
      f0 = _mm512_fmadd_ps(av, _mm512_loadu_ps(b_row), f0);
      f1 = _mm512_fmadd_ps(av, _mm512_loadu_ps(b_row + 16), f1);
    }
    SpillChunk(f0, dacc);
    SpillChunk(f1, dacc + 16);
  }
  for (int v = 0; v < 4; ++v) {
    _mm256_storeu_ps(out_row + 8 * v,
                     _mm512_cvtpd_ps(_mm512_loadu_pd(dacc + 8 * v)));
  }
}

// Single-row variant over a 16-column block (column tail >= 16).
void Tile1x16(const float* a_row, const float* b, int64_t j0, int64_t k,
              int64_t m, float* out_row) {
  alignas(64) double dacc[16] = {};
  for (int64_t p0 = 0; p0 < k; p0 += kKChunk) {
    const int64_t p_end = std::min<int64_t>(k, p0 + kKChunk);
    __m512 f0 = _mm512_setzero_ps();
    for (int64_t p = p0; p < p_end; ++p) {
      f0 = _mm512_fmadd_ps(_mm512_set1_ps(a_row[p]),
                           _mm512_loadu_ps(b + p * m + j0), f0);
    }
    SpillChunk(f0, dacc);
  }
  for (int v = 0; v < 2; ++v) {
    _mm256_storeu_ps(out_row + 8 * v,
                     _mm512_cvtpd_ps(_mm512_loadu_pd(dacc + 8 * v)));
  }
}

// Scalar column tail (< 16 columns). __builtin_fmaf is the single-rounding
// scalar twin of a vector _mm512_fmadd_ps lane, so this produces the same
// bits as the vector paths would for the same element.
float ScalarChunkedDot(const float* a_row, const float* b, int64_t j,
                       int64_t k, int64_t m) {
  double dacc = 0.0;
  for (int64_t p0 = 0; p0 < k; p0 += kKChunk) {
    const int64_t p_end = std::min<int64_t>(k, p0 + kKChunk);
    float run = 0.0f;
    for (int64_t p = p0; p < p_end; ++p) {
      run = __builtin_fmaf(a_row[p], b[p * m + j], run);
    }
    dacc += static_cast<double>(run);
  }
  return static_cast<float>(dacc);
}

ADPA_HOT void GemmRowsAvx512(const float* a, const double* ad, const float* b,
                    int64_t i_begin, int64_t i_end, int64_t k, int64_t m,
                    float* out) {
  (void)ad;  // this level accumulates float runs straight from `a`
  int64_t j0 = 0;
  for (; j0 + kNr <= m; j0 += kNr) {
    int64_t i0 = i_begin;
    for (; i0 + kMr <= i_end; i0 += kMr) {
      Tile8x32(a, b, i0, j0, k, m, out);
    }
    for (; i0 < i_end; ++i0) {
      Tile1x32(a + i0 * k, b, j0, k, m, out + i0 * m + j0);
    }
  }
  if (j0 + 16 <= m) {
    for (int64_t i0 = i_begin; i0 < i_end; ++i0) {
      Tile1x16(a + i0 * k, b, j0, k, m, out + i0 * m + j0);
    }
    j0 += 16;
  }
  if (j0 < m) {
    for (int64_t i0 = i_begin; i0 < i_end; ++i0) {
      const float* a_row = a + i0 * k;
      float* out_row = out + i0 * m;
      for (int64_t j = j0; j < m; ++j) {
        out_row[j] = ScalarChunkedDot(a_row, b, j, k, m);
      }
    }
  }
}

ADPA_HOT double DotAvx512(const float* a, const float* b, int64_t k) {
  // 16-wide float lanes widened into two 8-wide double accumulators; fixed
  // lane order in the final horizontal sum keeps the result a pure
  // function of k.
  __m512d acc_lo = _mm512_setzero_pd();
  __m512d acc_hi = _mm512_setzero_pd();
  int64_t p = 0;
  for (; p + 16 <= k; p += 16) {
    const __m256 af_lo = _mm256_loadu_ps(a + p);
    const __m256 bf_lo = _mm256_loadu_ps(b + p);
    const __m256 af_hi = _mm256_loadu_ps(a + p + 8);
    const __m256 bf_hi = _mm256_loadu_ps(b + p + 8);
    acc_lo = _mm512_fmadd_pd(_mm512_cvtps_pd(af_lo), _mm512_cvtps_pd(bf_lo),
                             acc_lo);
    acc_hi = _mm512_fmadd_pd(_mm512_cvtps_pd(af_hi), _mm512_cvtps_pd(bf_hi),
                             acc_hi);
  }
  double lanes[16];
  _mm512_storeu_pd(lanes + 0, acc_lo);
  _mm512_storeu_pd(lanes + 8, acc_hi);
  double total = 0.0;
  for (int l = 0; l < 16; ++l) total += lanes[l];
  for (; p < k; ++p) total += static_cast<double>(a[p]) * b[p];
  return total;
}

ADPA_HOT void AxpyWideAvx512(double w, const float* x, int64_t m, double* acc) {
  const __m512d wv = _mm512_set1_pd(w);
  int64_t j = 0;
  for (; j + 8 <= m; j += 8) {
    const __m512d xv = _mm512_cvtps_pd(_mm256_loadu_ps(x + j));
    const __m512d av = _mm512_loadu_pd(acc + j);
    _mm512_storeu_pd(acc + j, _mm512_fmadd_pd(wv, xv, av));
  }
  for (; j < m; ++j) acc[j] += w * x[j];
}

inline void AxpyRowF32(float* dst, const float* src, float w, int64_t n) {
  const __m512 wv = _mm512_set1_ps(w);
  int64_t c = 0;
  for (; c + 16 <= n; c += 16) {
    const __m512 sv = _mm512_loadu_ps(src + c);
    const __m512 dv = _mm512_loadu_ps(dst + c);
    _mm512_storeu_ps(dst + c, _mm512_fmadd_ps(wv, sv, dv));
  }
  // Explicit fmaf keeps the tail a single rounding — the same arithmetic
  // as the fmadd lanes above — independent of contraction heuristics.
  for (; c < n; ++c) dst[c] = __builtin_fmaf(w, src[c], dst[c]);
}

constexpr int64_t kSpmmColBlock = 1024;

ADPA_HOT void SpmmRowsAvx512(const int64_t* row_ptr, const int32_t* col_idx,
                    const float* values, const float* dense, int64_t cols,
                    int64_t row_begin, int64_t row_end, float* out) {
  for (int64_t c0 = 0; c0 < cols; c0 += kSpmmColBlock) {
    const int64_t width = std::min<int64_t>(kSpmmColBlock, cols - c0);
    for (int64_t r = row_begin; r < row_end; ++r) {
      float* out_row = out + r * cols + c0;
      std::fill(out_row, out_row + width, 0.0f);
      for (int64_t p = row_ptr[r]; p < row_ptr[r + 1]; ++p) {
        AxpyRowF32(out_row, dense + int64_t{col_idx[p]} * cols + c0,
                   values[p], width);
      }
    }
  }
}

void ScaleAvx512(float* dst, float factor, int64_t n);

ADPA_HOT void SpmmAxpbyRowsAvx512(const int64_t* row_ptr, const int32_t* col_idx,
                         const float* values, const float* dense,
                         const float* residual, float alpha, float beta,
                         int64_t cols, int64_t row_begin, int64_t row_end,
                         float* out) {
  for (int64_t c0 = 0; c0 < cols; c0 += kSpmmColBlock) {
    const int64_t width = std::min<int64_t>(kSpmmColBlock, cols - c0);
    for (int64_t r = row_begin; r < row_end; ++r) {
      float* out_row = out + r * cols + c0;
      std::fill(out_row, out_row + width, 0.0f);
      for (int64_t p = row_ptr[r]; p < row_ptr[r + 1]; ++p) {
        AxpyRowF32(out_row, dense + int64_t{col_idx[p]} * cols + c0,
                   values[p], width);
      }
      // Finalize through the very same scale/axpy kernels the unfused
      // ScaleInPlace + AddScaledInPlace sequence dispatches to, so fused ==
      // unfused holds bit for bit by construction. (An open-coded
      // "equivalent" loop is not enough: -ffp-contract lets the compiler
      // contract the scalar tails of each loop differently.)
      ScaleAvx512(out_row, beta, width);
      AxpyRowF32(out_row, residual + r * cols + c0, alpha, width);
    }
  }
}

ADPA_HOT void AddAvx512(float* dst, const float* src, int64_t n) {
  int64_t i = 0;
  for (; i + 16 <= n; i += 16) {
    _mm512_storeu_ps(
        dst + i, _mm512_add_ps(_mm512_loadu_ps(dst + i),
                               _mm512_loadu_ps(src + i)));
  }
  for (; i < n; ++i) dst[i] += src[i];
}

ADPA_HOT void SubAvx512(float* dst, const float* src, int64_t n) {
  int64_t i = 0;
  for (; i + 16 <= n; i += 16) {
    _mm512_storeu_ps(
        dst + i, _mm512_sub_ps(_mm512_loadu_ps(dst + i),
                               _mm512_loadu_ps(src + i)));
  }
  for (; i < n; ++i) dst[i] -= src[i];
}

ADPA_HOT void MulAvx512(float* dst, const float* src, int64_t n) {
  int64_t i = 0;
  for (; i + 16 <= n; i += 16) {
    _mm512_storeu_ps(
        dst + i, _mm512_mul_ps(_mm512_loadu_ps(dst + i),
                               _mm512_loadu_ps(src + i)));
  }
  for (; i < n; ++i) dst[i] *= src[i];
}

ADPA_HOT void ScaleAvx512(float* dst, float factor, int64_t n) {
  const __m512 fv = _mm512_set1_ps(factor);
  int64_t i = 0;
  for (; i + 16 <= n; i += 16) {
    _mm512_storeu_ps(dst + i, _mm512_mul_ps(_mm512_loadu_ps(dst + i), fv));
  }
  for (; i < n; ++i) dst[i] *= factor;
}

ADPA_HOT void AxpyAvx512(float* dst, const float* src, float factor, int64_t n) {
  AxpyRowF32(dst, src, factor, n);
}

ADPA_HOT void ScaleToAvx512(float* dst, const float* src, float factor, int64_t n) {
  const __m512 fv = _mm512_set1_ps(factor);
  int64_t i = 0;
  for (; i + 16 <= n; i += 16) {
    _mm512_storeu_ps(dst + i, _mm512_mul_ps(_mm512_loadu_ps(src + i), fv));
  }
  for (; i < n; ++i) dst[i] = factor * src[i];
}

}  // namespace

const KernelTable kAvx512Table = {
    GemmRowsAvx512, DotAvx512,  AxpyWideAvx512,
    SpmmRowsAvx512, SpmmAxpbyRowsAvx512,
    AddAvx512,      SubAvx512,  MulAvx512,
    ScaleAvx512,    AxpyAvx512, ScaleToAvx512,
    CopyPortable,
};

}  // namespace adpa::simd::detail

#else  // !x86-64: the AVX-512 level is never CPU-supported; alias portable.

namespace adpa::simd::detail {
const KernelTable kAvx512Table = {
    GemmRowsPortable, DotPortable,      AxpyWidePortable,
    SpmmRowsPortable, SpmmAxpbyRowsPortable,
    AddPortable,      SubPortable,      MulPortable,
    ScalePortable,    AxpyPortable,     ScaleToPortable,
    CopyPortable,
};
}  // namespace adpa::simd::detail

#endif
