#pragma once
#include <cstdint>
#include <string>
#include <vector>

namespace adpa::simd {

/// Instruction-set level of the kernel implementations behind the dense and
/// sparse tensor ops (DESIGN.md §12). Levels are ordered: a higher level is
/// preferred when the CPU supports it.
///
/// Determinism contract per level: every kernel fixes its per-output-element
/// accumulation order as a function of shapes only, so results at one level
/// are bitwise identical run-to-run and for any thread count. Levels may
/// differ from each other in the low bits (FMA contraction, lane-widened
/// accumulator splitting); cross-level agreement is verified by the
/// rel-error parity suite (tests/simd_test.cc), not bit equality.
enum class Level {
  kPortable = 0,  ///< Plain C++ loops (the pre-dispatch kernels, unchanged).
  kAvx2 = 1,      ///< AVX2 + FMA, 256-bit lanes.
  kAvx512 = 2,    ///< AVX-512F, 512-bit lanes.
};

/// Lowercase level name ("portable", "avx2", "avx512").
const char* LevelName(Level level);

/// Parses a level name as produced by LevelName. Returns false (and leaves
/// `*out` untouched) on an unknown name.
bool ParseLevel(const std::string& name, Level* out);

/// True when the running CPU can execute kernels of the given level.
/// kPortable is always supported.
bool LevelSupported(Level level);

/// All levels the running CPU supports, in ascending order (kPortable
/// first). Never empty.
std::vector<Level> SupportedLevels();

/// The level kernels currently dispatch to. Resolved once on first use:
/// the ADPA_SIMD_LEVEL environment variable if set (aborts on an unknown or
/// unsupported value — an explicit request must not degrade silently),
/// otherwise the highest supported level.
Level ActiveLevel();

/// Overrides the dispatch level (tests sweep every supported level on one
/// machine; the CLI exposes --simd_level). Aborts if the CPU does not
/// support `level`. Not thread-safe against concurrently running kernels —
/// call between kernel invocations, like SetNumThreads.
void SetLevel(Level level);

/// Function-pointer table of the level-specialized inner kernels. The
/// public tensor ops (adpa::MatMul family, SparseMatrix::Multiply, the
/// elementwise Matrix updates) keep their signatures and route their inner
/// loops through this table; every row/panel primitive here writes only to
/// the output range it is handed, so the ParallelFor partitioning done by
/// the callers preserves the thread-count-invariance contract unchanged.
struct KernelTable {
  /// Dense GEMM panel: computes output rows [i_begin, i_end) of a*b.
  /// `a` is the row-major n x k float input and `ad` the same matrix
  /// pre-widened to double — both are always provided, and a level reads
  /// whichever operand its accumulation scheme needs. `b` is row-major
  /// k x m float; `out` row-major n x m, fully overwritten in the row range.
  ///
  /// Accumulation discipline: the portable and AVX2 levels accumulate each
  /// output element in one double chain over the full contraction. The
  /// AVX-512 level accumulates fixed 128-step runs in float32 FMAs and
  /// folds each completed run into a double accumulator — the unbounded-k
  /// direction still accumulates in double, at twice the FMA throughput.
  /// Either way the order is a pure function of shapes, so every level is
  /// bitwise thread-count invariant; levels differ only to rel-error.
  void (*gemm_rows)(const float* a, const double* ad, const float* b,
                    int64_t i_begin, int64_t i_end, int64_t k, int64_t m,
                    float* out);

  /// Double-accumulated dot product of two float spans of length k.
  double (*dot)(const float* a, const float* b, int64_t k);

  /// acc[j] += double(w) * x[j] for j in [0, m): the widened-accumulator
  /// inner axpy of MatMulSparseA / MatMulTransposeA.
  void (*axpy_wide)(double w, const float* x, int64_t m, double* acc);

  /// CSR SpMM over output rows [row_begin, row_end): overwrites
  /// out[r] = sum_p values[p] * dense[col_idx[p]] for each row. float32
  /// accumulation in CSR order (matching the historical kernel), blocked
  /// over the feature dimension so the gathered dense rows stay cache
  /// resident.
  void (*spmm_rows)(const int64_t* row_ptr, const int32_t* col_idx,
                    const float* values, const float* dense, int64_t cols,
                    int64_t row_begin, int64_t row_end, float* out);

  /// Fused per-hop chain over output rows [row_begin, row_end):
  ///   out[r] = beta * (A * dense)[r] + alpha * residual[r]
  /// in a single pass (SpMM -> scale -> residual add without materializing
  /// the intermediate). `residual` may alias `dense`; it must not alias
  /// `out`. Matches the unfused Multiply+ScaleInPlace+AddScaledInPlace
  /// sequence operation-for-operation.
  void (*spmm_axpby_rows)(const int64_t* row_ptr, const int32_t* col_idx,
                          const float* values, const float* dense,
                          const float* residual, float alpha, float beta,
                          int64_t cols, int64_t row_begin, int64_t row_end,
                          float* out);

  /// Elementwise span kernels (each element independent).
  void (*add)(float* dst, const float* src, int64_t n);        // dst += src
  void (*sub)(float* dst, const float* src, int64_t n);        // dst -= src
  void (*mul)(float* dst, const float* src, int64_t n);        // dst *= src
  void (*scale)(float* dst, float factor, int64_t n);          // dst *= f
  void (*axpy)(float* dst, const float* src, float factor,
               int64_t n);                                     // dst += f*src
  void (*scale_to)(float* dst, const float* src, float factor,
                   int64_t n);                                 // dst = f*src
  void (*copy)(float* dst, const float* src, int64_t n);       // dst = src
};

/// The kernel table for ActiveLevel().
const KernelTable& Kernels();

/// The kernel table for a specific level (aborts if unsupported). The
/// parity suite uses this to compare levels side by side.
const KernelTable& KernelsFor(Level level);

}  // namespace adpa::simd
