#pragma once
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "src/core/logging.h"
#include "src/graph/sparse_matrix.h"
#include "src/tensor/matrix.h"

namespace adpa {

class Rng;

namespace ag {

/// A node of the define-by-run autograd tape. Users interact through
/// `Variable`; nodes are reference-counted and freed when the last Variable
/// of a forward pass goes out of scope. The backward closure only captures
/// *parent* nodes, never the node itself, so there are no reference cycles.
struct Node {
  Matrix value;
  Matrix grad;  // allocated lazily on first accumulation
  bool requires_grad = false;
  /// Static op tag ("leaf" for Parameter/Constant). The tape analyzer
  /// (src/tensor/tape_analysis.h) keys its per-op shape rules on this.
  const char* op = "leaf";
  std::vector<std::shared_ptr<Node>> parents;
  /// Accumulates gradients into the parents given this node's output grad.
  std::function<void(const Matrix& grad_out)> backward;

  /// Adds `delta` into `grad`, allocating it on first use.
  void AccumulateGrad(const Matrix& delta);
};

/// Shared handle to a tape node. Copying a Variable aliases the same node.
/// All accessors DCHECK `defined()` first, so a default-constructed
/// Variable fails loudly in debug/sanitizer builds instead of dereferencing
/// a null node.
class Variable {
 public:
  Variable() = default;
  explicit Variable(std::shared_ptr<Node> node) : node_(std::move(node)) {}

  bool defined() const { return node_ != nullptr; }
  const Matrix& value() const {
    DcheckDefined();
    return node_->value;
  }
  const Matrix& grad() const {
    DcheckDefined();
    return node_->grad;
  }
  bool requires_grad() const {
    DcheckDefined();
    return node_->requires_grad;
  }
  int64_t rows() const {
    DcheckDefined();
    return node_->value.rows();
  }
  int64_t cols() const {
    DcheckDefined();
    return node_->value.cols();
  }

  std::shared_ptr<Node> node() const { return node_; }

  /// Clears the accumulated gradient (optimizers call this between steps).
  void ZeroGrad();

  /// Replaces the stored value (used by optimizers applying updates).
  Matrix* mutable_value() {
    DcheckDefined();
    return &node_->value;
  }

 private:
  void DcheckDefined() const {
    ADPA_DCHECK(defined()) << "access through a default-constructed Variable";
  }

  std::shared_ptr<Node> node_;
};

/// Leaf with requires_grad = true (a trainable parameter).
Variable Parameter(Matrix value);

/// Leaf with requires_grad = false (data / precomputed features).
Variable Constant(Matrix value);

/// c = a + b (same shapes).
Variable Add(const Variable& a, const Variable& b);

/// c = a - b.
Variable Sub(const Variable& a, const Variable& b);

/// c = a ⊙ b (Hadamard).
Variable Mul(const Variable& a, const Variable& b);

/// c = factor * a.
Variable Scale(const Variable& a, float factor);

/// c = a @ b.
Variable MatMul(const Variable& a, const Variable& b);

/// c = aᵀ @ b (without materializing aᵀ); used by low-rank global
/// attention (Gram-style mixing).
Variable MatMulTransposeA(const Variable& a, const Variable& b);

/// c = a + bias, where bias is a 1 x cols row vector broadcast over rows.
Variable AddBias(const Variable& a, const Variable& bias);

/// c = A @ x for a constant sparse operator A (graph convolution step).
/// Gradient: dL/dx = Aᵀ (dL/dc).
Variable SpMM(const SparseMatrix& a, const Variable& x);

/// Activations.
Variable Relu(const Variable& a);
Variable LeakyRelu(const Variable& a, float negative_slope = 0.2f);
Variable Sigmoid(const Variable& a);
Variable Tanh(const Variable& a);

/// Inverted dropout: at train time zeroes entries with probability `p` and
/// rescales survivors by 1/(1-p); identity at eval time. The mask is drawn
/// from `rng` (one Bernoulli per entry), so re-seeding the Rng reproduces
/// the mask exactly — the gradcheck harness relies on this to hold the mask
/// fixed across finite-difference evaluations (see src/tensor/gradcheck.h).
Variable Dropout(const Variable& a, float p, bool training, Rng* rng);

/// Samples the inverted-dropout mask Dropout would apply: entries are 0
/// with probability `p` and 1/(1-p) otherwise. Exposed so tests can
/// precompute a mask once and apply it deterministically.
Matrix DropoutMask(int64_t rows, int64_t cols, float p, Rng* rng);

/// Applies a precomputed dropout mask (same shape as `a`). Dropout is
/// exactly DropoutWithMask(a, DropoutMask(...)); calling this directly
/// makes the op a deterministic function of its inputs, which is what the
/// fixed-mask gradcheck entry exercises.
Variable DropoutWithMask(const Variable& a, const Matrix& mask);

/// Column-wise concatenation [a0 | a1 | ...].
Variable ConcatCols(const std::vector<Variable>& parts);

/// Columns [begin, end) of a.
Variable SliceCols(const Variable& a, int64_t begin, int64_t end);

/// Scales row r of `a` by scalar s(r, 0); `scales` must be rows x 1.
/// This is the primitive behind node-wise attention weighting.
Variable ScaleRows(const Variable& a, const Variable& scales);

/// c = s * a where `s` is a trainable 1x1 scalar variable (used for
/// learnable propagation coefficients, e.g. GPR-GNN's γ_k).
Variable ScaleScalar(const Variable& a, const Variable& s);

/// Row-wise softmax (used for attention weight normalization).
Variable SoftmaxRows(const Variable& a);

/// Row-wise log-softmax (numerically stable).
Variable LogSoftmaxRows(const Variable& a);

/// Sum of all entries, as a 1x1 variable.
Variable SumAll(const Variable& a);

/// Mean cross-entropy over the rows selected by `mask_indices`:
/// L = -(1/|M|) Σ_{i∈M} log softmax(logits_i)[labels_i]. Returns 1x1.
Variable MaskedCrossEntropy(const Variable& logits,
                            const std::vector<int64_t>& labels,
                            const std::vector<int64_t>& mask_indices);

/// Runs reverse-mode accumulation from `root` (typically the 1x1 loss).
/// Seeds d(root)/d(root) = 1. Parameter gradients accumulate across calls
/// until ZeroGrad, matching standard deep-learning framework semantics.
void Backward(const Variable& root);

}  // namespace ag
}  // namespace adpa

