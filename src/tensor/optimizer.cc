#include "src/tensor/optimizer.h"

#include <cmath>

#include "src/core/logging.h"

namespace adpa {

void Optimizer::ZeroGrad() {
  for (ag::Variable& p : parameters_) p.ZeroGrad();
}

Sgd::Sgd(std::vector<ag::Variable> parameters, float learning_rate,
         float weight_decay)
    : Optimizer(std::move(parameters)),
      learning_rate_(learning_rate),
      weight_decay_(weight_decay) {}

void Sgd::Step() {
  for (ag::Variable& p : parameters_) {
    if (p.grad().empty()) continue;
    Matrix* value = p.mutable_value();
    const Matrix& grad = p.grad();
    ADPA_DCHECK(grad.SameShape(*value))
        << "parameter/gradient shape mismatch in Sgd::Step";
    for (int64_t i = 0; i < value->size(); ++i) {
      const float g = grad.data()[i] + weight_decay_ * value->data()[i];
      value->data()[i] -= learning_rate_ * g;
    }
  }
}

Adam::Adam(std::vector<ag::Variable> parameters, float learning_rate,
           float weight_decay, float beta1, float beta2, float epsilon)
    : Optimizer(std::move(parameters)),
      learning_rate_(learning_rate),
      weight_decay_(weight_decay),
      beta1_(beta1),
      beta2_(beta2),
      epsilon_(epsilon) {
  first_moment_.reserve(parameters_.size());
  second_moment_.reserve(parameters_.size());
  for (const ag::Variable& p : parameters_) {
    first_moment_.emplace_back(p.value().rows(), p.value().cols());
    second_moment_.emplace_back(p.value().rows(), p.value().cols());
  }
}

void Adam::Step() {
  ++step_count_;
  const float bias1 =
      1.0f - std::pow(beta1_, static_cast<float>(step_count_));
  const float bias2 =
      1.0f - std::pow(beta2_, static_cast<float>(step_count_));
  for (size_t k = 0; k < parameters_.size(); ++k) {
    ag::Variable& p = parameters_[k];
    if (p.grad().empty()) continue;
    Matrix* value = p.mutable_value();
    const Matrix& grad = p.grad();
    Matrix& m = first_moment_[k];
    Matrix& v = second_moment_[k];
    ADPA_DCHECK(grad.SameShape(*value))
        << "parameter/gradient shape mismatch in Adam::Step";
    ADPA_DCHECK(m.SameShape(*value))
        << "Adam moment shape diverged from its parameter (the parameter "
           "matrix was reshaped after optimizer construction)";
    ADPA_DCHECK(v.SameShape(*value));
    for (int64_t i = 0; i < value->size(); ++i) {
      const float g = grad.data()[i] + weight_decay_ * value->data()[i];
      m.data()[i] = beta1_ * m.data()[i] + (1.0f - beta1_) * g;
      v.data()[i] = beta2_ * v.data()[i] + (1.0f - beta2_) * g * g;
      const float m_hat = m.data()[i] / bias1;
      const float v_hat = v.data()[i] / bias2;
      value->data()[i] -=
          learning_rate_ * m_hat / (std::sqrt(v_hat) + epsilon_);
    }
  }
}

AdamState Adam::ExportState() const {
  AdamState state;
  state.step_count = step_count_;
  state.first_moment = first_moment_;
  state.second_moment = second_moment_;
  return state;
}

Status Adam::RestoreState(AdamState state) {
  if (state.first_moment.size() != parameters_.size() ||
      state.second_moment.size() != parameters_.size()) {
    return Status::InvalidArgument(
        "Adam state has " + std::to_string(state.first_moment.size()) + "/" +
        std::to_string(state.second_moment.size()) +
        " moment matrices but the optimizer tracks " +
        std::to_string(parameters_.size()) + " parameters");
  }
  if (state.step_count < 0) {
    return Status::InvalidArgument("Adam state has a negative step count");
  }
  for (size_t k = 0; k < parameters_.size(); ++k) {
    const Matrix& value = parameters_[k].value();
    if (!state.first_moment[k].SameShape(value) ||
        !state.second_moment[k].SameShape(value)) {
      return Status::InvalidArgument(
          "Adam state moment " + std::to_string(k) +
          " does not match its parameter shape (checkpoint from a "
          "different model configuration?)");
    }
  }
  step_count_ = state.step_count;
  first_moment_ = std::move(state.first_moment);
  second_moment_ = std::move(state.second_moment);
  return Status::OK();
}

}  // namespace adpa
