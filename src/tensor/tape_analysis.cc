#include "src/tensor/tape_analysis.h"

#include <cstring>
#include <sstream>
#include <unordered_map>
#include <unordered_set>
#include <utility>

namespace adpa {
namespace ag {

namespace {

std::string ShapeOf(const Matrix& m) {
  std::ostringstream out;
  out << m.rows() << "x" << m.cols();
  return out.str();
}

std::string Describe(const Node* node) {
  std::ostringstream out;
  out << node->op << " node (" << ShapeOf(node->value) << ")";
  return out.str();
}

bool IsOneOf(const char* op, std::initializer_list<const char*> names) {
  for (const char* name : names) {
    if (std::strcmp(op, name) == 0) return true;
  }
  return false;
}

/// Per-op structural rules. Shapes that depend on captured state (the SpMM
/// operator, SliceCols bounds) are checked as far as the parent list
/// allows; unknown ops get only the generic arity > 0 rule so the analyzer
/// never hard-fails on an op added after it was written.
void CheckOpShapes(const Node* node, std::vector<std::string>* violations) {
  const auto& parents = node->parents;
  const Matrix& value = node->value;
  auto complain = [&](const std::string& what) {
    violations->push_back(Describe(node) + ": " + what);
  };
  auto require_arity = [&](size_t arity) {
    if (parents.size() != arity) {
      std::ostringstream out;
      out << "expected " << arity << " parent(s), has " << parents.size();
      complain(out.str());
      return false;
    }
    return true;
  };

  const char* op = node->op;
  if (IsOneOf(op, {"Add", "Sub", "Mul"})) {
    if (require_arity(2)) {
      for (const auto& parent : parents) {
        if (!parent->value.SameShape(value)) {
          complain("operand shape " + ShapeOf(parent->value) +
                   " differs from output");
        }
      }
    }
  } else if (IsOneOf(op, {"Scale", "Relu", "LeakyRelu", "Sigmoid", "Tanh",
                          "DropoutWithMask", "Dropout", "SoftmaxRows",
                          "LogSoftmaxRows"})) {
    if (require_arity(1) && !parents[0]->value.SameShape(value)) {
      complain("input shape " + ShapeOf(parents[0]->value) +
               " differs from output");
    }
  } else if (IsOneOf(op, {"MatMul"})) {
    if (require_arity(2)) {
      const Matrix& a = parents[0]->value;
      const Matrix& b = parents[1]->value;
      if (a.cols() != b.rows() || value.rows() != a.rows() ||
          value.cols() != b.cols()) {
        complain("inconsistent with operands " + ShapeOf(a) + " @ " +
                 ShapeOf(b));
      }
    }
  } else if (IsOneOf(op, {"MatMulTransposeA"})) {
    if (require_arity(2)) {
      const Matrix& a = parents[0]->value;
      const Matrix& b = parents[1]->value;
      if (a.rows() != b.rows() || value.rows() != a.cols() ||
          value.cols() != b.cols()) {
        complain("inconsistent with operands " + ShapeOf(a) + "ᵀ @ " +
                 ShapeOf(b));
      }
    }
  } else if (IsOneOf(op, {"AddBias"})) {
    if (require_arity(2)) {
      if (!parents[0]->value.SameShape(value)) {
        complain("input shape " + ShapeOf(parents[0]->value) +
                 " differs from output");
      }
      if (parents[1]->value.rows() != 1 ||
          parents[1]->value.cols() != value.cols()) {
        complain("bias shape " + ShapeOf(parents[1]->value) +
                 " is not 1x" + std::to_string(value.cols()));
      }
    }
  } else if (IsOneOf(op, {"SpMM"})) {
    // The sparse operator lives in the backward closure, so only the
    // feature dimension is visible for checking.
    if (require_arity(1) && parents[0]->value.cols() != value.cols()) {
      complain("feature dim changed across SpMM: input " +
               ShapeOf(parents[0]->value));
    }
  } else if (IsOneOf(op, {"ConcatCols"})) {
    int64_t total_cols = 0;
    for (const auto& parent : parents) {
      total_cols += parent->value.cols();
      if (parent->value.rows() != value.rows()) {
        complain("part with " + std::to_string(parent->value.rows()) +
                 " rows in a " + std::to_string(value.rows()) +
                 "-row concat");
      }
    }
    if (parents.empty() || total_cols != value.cols()) {
      complain("part columns sum to " + std::to_string(total_cols) +
               ", output has " + std::to_string(value.cols()));
    }
  } else if (IsOneOf(op, {"SliceCols"})) {
    if (require_arity(1)) {
      if (parents[0]->value.rows() != value.rows() ||
          parents[0]->value.cols() < value.cols()) {
        complain("slice wider than its input " + ShapeOf(parents[0]->value));
      }
    }
  } else if (IsOneOf(op, {"ScaleRows"})) {
    if (require_arity(2)) {
      if (!parents[0]->value.SameShape(value)) {
        complain("input shape " + ShapeOf(parents[0]->value) +
                 " differs from output");
      }
      if (parents[1]->value.rows() != value.rows() ||
          parents[1]->value.cols() != 1) {
        complain("scales shape " + ShapeOf(parents[1]->value) +
                 " is not " + std::to_string(value.rows()) + "x1");
      }
    }
  } else if (IsOneOf(op, {"ScaleScalar"})) {
    if (require_arity(2)) {
      if (!parents[0]->value.SameShape(value)) {
        complain("input shape " + ShapeOf(parents[0]->value) +
                 " differs from output");
      }
      if (parents[1]->value.rows() != 1 || parents[1]->value.cols() != 1) {
        complain("scalar operand has shape " + ShapeOf(parents[1]->value));
      }
    }
  } else if (IsOneOf(op, {"SumAll", "MaskedCrossEntropy"})) {
    if (require_arity(1) && (value.rows() != 1 || value.cols() != 1)) {
      complain("reduction output is not 1x1");
    }
  } else if (!IsOneOf(op, {"leaf"})) {
    // Unknown op tag: only require it to have parents at all.
    if (parents.empty()) {
      complain("op node with no parents (and not tagged as a leaf)");
    }
  }
}

void CheckNodeInvariants(const Node* node,
                         std::vector<std::string>* violations) {
  for (const auto& parent : node->parents) {
    if (parent == nullptr) {
      violations->push_back(Describe(node) + ": null parent pointer");
      return;  // shape rules below would dereference the null parent
    }
  }
  const bool is_leaf = node->parents.empty();
  if (!is_leaf && node->requires_grad && !node->backward) {
    violations->push_back(Describe(node) +
                          ": requires_grad set but backward is empty");
  }
  if (!node->requires_grad && node->backward) {
    violations->push_back(Describe(node) +
                          ": backward closure on a non-grad node");
  }
  if (!is_leaf) {
    bool any_parent_grad = false;
    for (const auto& parent : node->parents) {
      any_parent_grad = any_parent_grad || parent->requires_grad;
    }
    if (node->requires_grad != any_parent_grad) {
      violations->push_back(Describe(node) +
                            ": requires_grad disagrees with parents");
    }
  }
  if (!node->grad.empty() && !node->grad.SameShape(node->value)) {
    violations->push_back(Describe(node) + ": accumulated gradient is " +
                          ShapeOf(node->grad) + ", value is " +
                          ShapeOf(node->value));
  }
  CheckOpShapes(node, violations);
}

}  // namespace

std::string TapeReport::Summary() const {
  std::ostringstream out;
  out << "tape: " << num_nodes << " node(s), " << num_edges << " edge(s), "
      << num_leaves << " leaf/leaves, " << violations.size()
      << " violation(s), " << dead_params.size() << " dead parameter(s)";
  for (const std::string& violation : violations) {
    out << "\n  violation: " << violation;
  }
  for (int64_t index : dead_params) {
    out << "\n  dead parameter: index " << index
        << " is unreachable from the root";
  }
  return out.str();
}

TapeReport AnalyzeTape(const Variable& root,
                       const std::vector<Variable>& params) {
  TapeReport report;
  ADPA_CHECK(root.defined()) << "AnalyzeTape on an undefined Variable";

  // Iterative DFS with tri-color marking: kOnStack detects parent cycles
  // (impossible via the public op constructors, but a hand-wired Node or a
  // future in-place op could introduce one, and a cycle would make
  // Backward's traversal loop forever).
  enum class Color { kOnStack, kDone };
  std::unordered_map<const Node*, Color> colors;
  std::vector<std::pair<Node*, size_t>> stack;
  Node* root_node = root.node().get();
  stack.emplace_back(root_node, 0);
  colors[root_node] = Color::kOnStack;
  while (!stack.empty()) {
    auto& [node, next_parent] = stack.back();
    if (next_parent == 0) {
      ++report.num_nodes;
      if (node->parents.empty()) ++report.num_leaves;
      CheckNodeInvariants(node, &report.violations);
    }
    if (next_parent < node->parents.size()) {
      Node* parent = node->parents[next_parent++].get();
      if (parent == nullptr) continue;  // reported by CheckNodeInvariants
      ++report.num_edges;
      auto it = colors.find(parent);
      if (it == colors.end()) {
        colors[parent] = Color::kOnStack;
        stack.emplace_back(parent, 0);
      } else if (it->second == Color::kOnStack) {
        report.violations.push_back(Describe(parent) +
                                    ": parent cycle detected");
      }
    } else {
      colors[node] = Color::kDone;
      stack.pop_back();
    }
  }

  for (size_t i = 0; i < params.size(); ++i) {
    if (!params[i].defined() ||
        colors.find(params[i].node().get()) == colors.end()) {
      report.dead_params.push_back(static_cast<int64_t>(i));
    }
  }
  return report;
}

}  // namespace ag
}  // namespace adpa
