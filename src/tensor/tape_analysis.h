#pragma once
#include <cstdint>
#include <string>
#include <vector>

#include "src/tensor/autograd.h"

namespace adpa {
namespace ag {

/// Static analysis of a constructed autograd tape. `AnalyzeTape` walks the
/// Node DAG reachable from `root` and checks the structural invariants the
/// backward pass silently assumes:
///
///  * every parent pointer is non-null;
///  * the parent graph is acyclic (a cycle would hang Backward's DFS);
///  * an op node (non-empty parent list) with `requires_grad` set has a
///    backward closure, and a node without `requires_grad` has none;
///  * `requires_grad` on an op node equals the OR of its parents' flags
///    (the MakeOp propagation rule);
///  * an accumulated gradient, if present, matches the value's shape;
///  * per-op output/operand shape rules for every op tagged by
///    src/tensor/autograd.cc (e.g. Add operands are same-shape, a MatMul
///    output is a.rows x b.cols, SumAll is 1x1).
///
/// Violations indicate a bug in an op implementation (or a hand-built
/// Node), not user error, so callers typically ADPA_CHECK(report.ok()).
///
/// Separately from hard violations, the analyzer reports *dead* parameters:
/// entries of `params` whose node is unreachable from `root`. A dead
/// parameter silently receives no gradient and never trains — the exact
/// failure mode of forgetting to wire a block's output into the loss. The
/// trainer runs this check on the first step when
/// `TrainConfig::verify_tape` is set.
struct TapeReport {
  int64_t num_nodes = 0;  ///< reachable tape nodes, including leaves
  int64_t num_edges = 0;  ///< parent links among reachable nodes
  int64_t num_leaves = 0;
  /// Structural invariant breaches, one human-readable line each.
  std::vector<std::string> violations;
  /// Indices into `params` of parameters unreachable from the root.
  std::vector<int64_t> dead_params;

  bool ok() const { return violations.empty(); }

  /// One-line digest plus every violation / dead-parameter note.
  std::string Summary() const;
};

/// Analyzes the tape rooted at `root` (typically the loss). `params` is
/// optional; when given, unreachable entries are reported as dead.
TapeReport AnalyzeTape(const Variable& root,
                       const std::vector<Variable>& params = {});

}  // namespace ag
}  // namespace adpa
