#pragma once
#include <cstdint>
#include <string>
#include <vector>

#include "src/tensor/autograd.h"
#include "src/tensor/matrix.h"

namespace adpa {

class Rng;

namespace nn {

/// Glorot/Xavier uniform initialization: U[-√(6/(fan_in+fan_out)), +…].
Matrix GlorotUniform(int64_t fan_in, int64_t fan_out, Rng* rng);

/// Kaiming/He normal initialization: N(0, √(2/fan_in)).
Matrix KaimingNormal(int64_t fan_in, int64_t fan_out, Rng* rng);

/// Affine layer y = x W + b with Glorot-initialized W and zero bias.
class Linear {
 public:
  Linear() = default;
  Linear(int64_t in_features, int64_t out_features, Rng* rng,
         bool bias = true);

  ag::Variable Forward(const ag::Variable& x) const;

  /// Trainable parameters (W, then b if present).
  std::vector<ag::Variable> Parameters() const;

  int64_t in_features() const { return weight_.defined() ? weight_.rows() : 0; }
  int64_t out_features() const {
    return weight_.defined() ? weight_.cols() : 0;
  }

 private:
  ag::Variable weight_;
  ag::Variable bias_;
};

/// Activation selector for MLP hidden layers.
enum class Activation { kRelu, kLeakyRelu, kSigmoid, kTanh, kNone };

ag::Variable ApplyActivation(const ag::Variable& x, Activation activation);

/// Multi-layer perceptron: `num_layers` Linear layers with hidden width
/// `hidden`, activation + dropout between layers, no activation after the
/// last layer. With num_layers == 1 this is a single Linear.
class Mlp {
 public:
  Mlp() = default;
  Mlp(int64_t in_features, int64_t hidden, int64_t out_features,
      int num_layers, Rng* rng, float dropout = 0.0f,
      Activation activation = Activation::kRelu);

  /// `training` toggles dropout; `rng` is needed only when training.
  ag::Variable Forward(const ag::Variable& x, bool training, Rng* rng) const;

  std::vector<ag::Variable> Parameters() const;

  int num_layers() const { return static_cast<int>(layers_.size()); }

 private:
  std::vector<Linear> layers_;
  float dropout_ = 0.0f;
  Activation activation_ = Activation::kRelu;
};

}  // namespace nn
}  // namespace adpa

