// Portable (plain C++) kernel level. These are the historical matrix.cc and
// sparse_matrix.cc inner loops, moved behind the dispatch table unchanged:
// the `portable` level is the reference implementation every wider level is
// parity-tested against, and the only level used when ADPA_SIMD_LEVEL=portable
// or the CPU lacks AVX2.

#include <algorithm>
#include <cstdint>
#include <vector>

#include "src/tensor/simd_kernels.h"

namespace adpa::simd::detail {
namespace {

// Register tile of the blocked GEMM micro-kernel: kGemmMr output rows by
// kGemmNr output columns of double accumulators (4x32 doubles = 1 KiB,
// within the AVX register budget after spilling the hot lanes).
constexpr int64_t kGemmMr = 4;
constexpr int64_t kGemmNr = 32;

// Feature-dimension block of the CSR SpMM kernels: the output row slice and
// the gathered dense-row slices stay L1-resident while a row panel reuses
// its neighbours. Blocking changes only the traversal, never the per-element
// accumulation order, so results are bitwise identical to the unblocked
// sweep.
constexpr int64_t kSpmmColBlock = 1024;

// Per-thread packing buffer for the B column slab; capacity persists across
// calls so steady-state GEMMs do not allocate.
std::vector<double>& SlabScratch() {
  thread_local std::vector<double> slab;
  return slab;
}

}  // namespace

// Computes output rows [i_begin, i_end) of a*b from a pre-widened `a`
// (`ad`, row-major n x k doubles) and the original float `b`. Iterates
// column slabs of kGemmNr, packing each slab into a zero-padded k x kGemmNr
// double buffer (stays L2-resident across the row panels), then runs the
// register-tiled micro-kernel. Every output element is the sequential-k
// double dot product of its row and column, independent of the
// [i_begin, i_end) partition — so any chunking of rows over threads
// produces bitwise-identical results.
void GemmRowsPortable(const float* a, const double* ad, const float* b,
                      int64_t i_begin, int64_t i_end, int64_t k, int64_t m,
                      float* out) {
  (void)a;  // this level accumulates from the pre-widened operand
  std::vector<double>& slab_buf = SlabScratch();
  slab_buf.resize(k * kGemmNr);  // analyze:allow(alloc): thread_local slab capacity reuse
  double* slab = slab_buf.data();
  const int64_t num_slabs = (m + kGemmNr - 1) / kGemmNr;
  for (int64_t s = 0; s < num_slabs; ++s) {
    const int64_t j0 = s * kGemmNr;
    const int64_t width = std::min<int64_t>(kGemmNr, m - j0);
    for (int64_t p = 0; p < k; ++p) {
      const float* b_row = b + p * m + j0;
      double* dst = slab + p * kGemmNr;
      int64_t l = 0;
      for (; l < width; ++l) dst[l] = b_row[l];
      for (; l < kGemmNr; ++l) dst[l] = 0.0;  // padded lanes are discarded
    }
    int64_t i0 = i_begin;
    for (; i0 + kGemmMr <= i_end; i0 += kGemmMr) {
      double c[kGemmMr][kGemmNr] = {};
      const double* a0 = ad + (i0 + 0) * k;
      const double* a1 = ad + (i0 + 1) * k;
      const double* a2 = ad + (i0 + 2) * k;
      const double* a3 = ad + (i0 + 3) * k;
      for (int64_t p = 0; p < k; ++p) {
        const double* b_row = slab + p * kGemmNr;
        const double av0 = a0[p], av1 = a1[p], av2 = a2[p], av3 = a3[p];
        for (int64_t l = 0; l < kGemmNr; ++l) {
          const double bv = b_row[l];
          c[0][l] += av0 * bv;
          c[1][l] += av1 * bv;
          c[2][l] += av2 * bv;
          c[3][l] += av3 * bv;
        }
      }
      for (int64_t r = 0; r < kGemmMr; ++r) {
        float* out_row = out + (i0 + r) * m + j0;
        for (int64_t l = 0; l < width; ++l) {
          out_row[l] = static_cast<float>(c[r][l]);
        }
      }
    }
    // Row tail (< kGemmMr rows): single-row micro-kernel. Per element this
    // is the same sequential-k FMA chain as the 4-row kernel, so a row
    // lands on the same bits whichever path computes it.
    for (; i0 < i_end; ++i0) {
      double c1[kGemmNr] = {};
      const double* a_row = ad + i0 * k;
      for (int64_t p = 0; p < k; ++p) {
        const double av = a_row[p];
        const double* b_row = slab + p * kGemmNr;
        for (int64_t l = 0; l < kGemmNr; ++l) c1[l] += av * b_row[l];
      }
      float* out_row = out + i0 * m + j0;
      for (int64_t l = 0; l < width; ++l) {
        out_row[l] = static_cast<float>(c1[l]);
      }
    }
  }
}

double DotPortable(const float* a, const float* b, int64_t k) {
  double acc = 0.0;
  for (int64_t p = 0; p < k; ++p) {
    acc += static_cast<double>(a[p]) * b[p];
  }
  return acc;
}

void AxpyWidePortable(double w, const float* x, int64_t m, double* acc) {
  for (int64_t j = 0; j < m; ++j) acc[j] += w * x[j];
}

void SpmmRowsPortable(const int64_t* row_ptr, const int32_t* col_idx,
                      const float* values, const float* dense, int64_t cols,
                      int64_t row_begin, int64_t row_end, float* out) {
  for (int64_t c0 = 0; c0 < cols; c0 += kSpmmColBlock) {
    const int64_t width = std::min<int64_t>(kSpmmColBlock, cols - c0);
    for (int64_t r = row_begin; r < row_end; ++r) {
      float* out_row = out + r * cols + c0;
      std::fill(out_row, out_row + width, 0.0f);
      for (int64_t p = row_ptr[r]; p < row_ptr[r + 1]; ++p) {
        const float w = values[p];
        const float* in_row = dense + int64_t{col_idx[p]} * cols + c0;
        for (int64_t c = 0; c < width; ++c) out_row[c] += w * in_row[c];
      }
    }
  }
}

void SpmmAxpbyRowsPortable(const int64_t* row_ptr, const int32_t* col_idx,
                           const float* values, const float* dense,
                           const float* residual, float alpha, float beta,
                           int64_t cols, int64_t row_begin, int64_t row_end,
                           float* out) {
  for (int64_t c0 = 0; c0 < cols; c0 += kSpmmColBlock) {
    const int64_t width = std::min<int64_t>(kSpmmColBlock, cols - c0);
    for (int64_t r = row_begin; r < row_end; ++r) {
      float* out_row = out + r * cols + c0;
      std::fill(out_row, out_row + width, 0.0f);
      for (int64_t p = row_ptr[r]; p < row_ptr[r + 1]; ++p) {
        const float w = values[p];
        const float* in_row = dense + int64_t{col_idx[p]} * cols + c0;
        for (int64_t c = 0; c < width; ++c) out_row[c] += w * in_row[c];
      }
      // Finalize through the very same scale/axpy kernels the unfused
      // ScaleInPlace + AddScaledInPlace sequence dispatches to, so fused ==
      // unfused holds bit for bit by construction. (An open-coded
      // "equivalent" loop is not enough: -ffp-contract lets the compiler
      // contract the mul+add of each loop differently.)
      ScalePortable(out_row, beta, width);
      AxpyPortable(out_row, residual + r * cols + c0, alpha, width);
    }
  }
}

void AddPortable(float* dst, const float* src, int64_t n) {
  for (int64_t i = 0; i < n; ++i) dst[i] += src[i];
}

void SubPortable(float* dst, const float* src, int64_t n) {
  for (int64_t i = 0; i < n; ++i) dst[i] -= src[i];
}

void MulPortable(float* dst, const float* src, int64_t n) {
  for (int64_t i = 0; i < n; ++i) dst[i] *= src[i];
}

void ScalePortable(float* dst, float factor, int64_t n) {
  for (int64_t i = 0; i < n; ++i) dst[i] *= factor;
}

void AxpyPortable(float* dst, const float* src, float factor, int64_t n) {
  // Explicit single-rounding FMA: with -ffp-contract=fast and an FMA
  // target this is the contraction GCC already performed on the historical
  // `dst[i] += factor * src[i]` loop, so the bits are unchanged there —
  // and a build without -mfma (ADPA_NATIVE_ARCH=OFF) now produces the
  // same bits instead of a two-rounding mul+add, which is what keeps the
  // elementwise kernels bitwise identical across dispatch levels in every
  // build flavor. On FMA-less CPUs libm provides a correctly rounded
  // software fmaf (slower, still exact).
  for (int64_t i = 0; i < n; ++i) {
    dst[i] = __builtin_fmaf(factor, src[i], dst[i]);
  }
}

void ScaleToPortable(float* dst, const float* src, float factor, int64_t n) {
  for (int64_t i = 0; i < n; ++i) dst[i] = factor * src[i];
}

void CopyPortable(float* dst, const float* src, int64_t n) {
  std::copy(src, src + n, dst);
}

const KernelTable kPortableTable = {
    GemmRowsPortable, DotPortable,      AxpyWidePortable,
    SpmmRowsPortable, SpmmAxpbyRowsPortable,
    AddPortable,      SubPortable,      MulPortable,
    ScalePortable,    AxpyPortable,     ScaleToPortable,
    CopyPortable,
};

}  // namespace adpa::simd::detail
