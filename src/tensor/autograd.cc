#include "src/tensor/autograd.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "src/core/logging.h"
#include "src/core/random.h"
#include "src/tensor/simd.h"

namespace adpa {
namespace ag {

namespace {

std::shared_ptr<Node> MakeLeaf(Matrix value, bool requires_grad) {
  auto node = std::make_shared<Node>();
  node->value = std::move(value);
  node->requires_grad = requires_grad;
  return node;
}

std::shared_ptr<Node> MakeOp(const char* op, Matrix value,
                             std::vector<std::shared_ptr<Node>> parents,
                             std::function<void(const Matrix&)> backward) {
  auto node = std::make_shared<Node>();
  node->op = op;
  node->value = std::move(value);
  node->parents = std::move(parents);
  node->requires_grad = false;
  for (const auto& parent : node->parents) {
    ADPA_DCHECK(parent != nullptr)
        << "op node built from an undefined Variable";
    node->requires_grad = node->requires_grad || parent->requires_grad;
  }
  if (node->requires_grad) node->backward = std::move(backward);
  return node;
}

}  // namespace

void Node::AccumulateGrad(const Matrix& delta) {
  ADPA_DCHECK(delta.SameShape(value))
      << "gradient shape " << delta.rows() << "x" << delta.cols()
      << " does not match value shape " << value.rows() << "x" << value.cols();
  if (grad.empty()) grad = Matrix(value.rows(), value.cols());
  grad.AddInPlace(delta);
}

void Variable::ZeroGrad() {
  if (node_ != nullptr) node_->grad = Matrix();
}

Variable Parameter(Matrix value) {
  return Variable(MakeLeaf(std::move(value), /*requires_grad=*/true));
}

Variable Constant(Matrix value) {
  return Variable(MakeLeaf(std::move(value), /*requires_grad=*/false));
}

Variable Add(const Variable& a, const Variable& b) {
  ADPA_CHECK(a.value().SameShape(b.value()));
  auto pa = a.node();
  auto pb = b.node();
  return Variable(MakeOp("Add", adpa::Add(a.value(), b.value()), {pa, pb},
                         [pa, pb](const Matrix& g) {
                           if (pa->requires_grad) pa->AccumulateGrad(g);
                           if (pb->requires_grad) pb->AccumulateGrad(g);
                         }));
}

Variable Sub(const Variable& a, const Variable& b) {
  ADPA_CHECK(a.value().SameShape(b.value()));
  auto pa = a.node();
  auto pb = b.node();
  return Variable(MakeOp("Sub", adpa::Sub(a.value(), b.value()), {pa, pb},
                         [pa, pb](const Matrix& g) {
                           if (pa->requires_grad) pa->AccumulateGrad(g);
                           if (pb->requires_grad) {
                             Matrix neg = g;
                             neg.ScaleInPlace(-1.0f);
                             pb->AccumulateGrad(neg);
                           }
                         }));
}

Variable Mul(const Variable& a, const Variable& b) {
  ADPA_CHECK(a.value().SameShape(b.value()));
  auto pa = a.node();
  auto pb = b.node();
  return Variable(MakeOp("Mul", Hadamard(a.value(), b.value()), {pa, pb},
                         [pa, pb](const Matrix& g) {
                           if (pa->requires_grad) {
                             pa->AccumulateGrad(Hadamard(g, pb->value));
                           }
                           if (pb->requires_grad) {
                             pb->AccumulateGrad(Hadamard(g, pa->value));
                           }
                         }));
}

Variable Scale(const Variable& a, float factor) {
  auto pa = a.node();
  return Variable(MakeOp("Scale", adpa::Scale(a.value(), factor), {pa},
                         [pa, factor](const Matrix& g) {
                           if (pa->requires_grad) {
                             pa->AccumulateGrad(adpa::Scale(g, factor));
                           }
                         }));
}

Variable MatMul(const Variable& a, const Variable& b) {
  ADPA_CHECK_EQ(a.cols(), b.rows())
      << "MatMul shape mismatch: " << a.rows() << "x" << a.cols() << " @ "
      << b.rows() << "x" << b.cols();
  auto pa = a.node();
  auto pb = b.node();
  return Variable(MakeOp("MatMul",
      adpa::MatMul(a.value(), b.value()), {pa, pb}, [pa, pb](const Matrix& g) {
        if (pa->requires_grad) {
          pa->AccumulateGrad(MatMulTransposeB(g, pb->value));  // g @ bᵀ
        }
        if (pb->requires_grad) {
          pb->AccumulateGrad(MatMulTransposeA(pa->value, g));  // aᵀ @ g
        }
      }));
}

Variable MatMulTransposeA(const Variable& a, const Variable& b) {
  ADPA_CHECK_EQ(a.rows(), b.rows())
      << "MatMulTransposeA shape mismatch: " << a.rows() << "x" << a.cols()
      << "ᵀ @ " << b.rows() << "x" << b.cols();
  auto pa = a.node();
  auto pb = b.node();
  return Variable(MakeOp("MatMulTransposeA", adpa::MatMulTransposeA(a.value(), b.value()),
                         {pa, pb}, [pa, pb](const Matrix& g) {
                           if (pa->requires_grad) {
                             // d(aᵀb)/da: b @ gᵀ.
                             pa->AccumulateGrad(
                                 adpa::MatMulTransposeB(pb->value, g));
                           }
                           if (pb->requires_grad) {
                             // d(aᵀb)/db: a @ g.
                             pb->AccumulateGrad(adpa::MatMul(pa->value, g));
                           }
                         }));
}

Variable AddBias(const Variable& a, const Variable& bias) {
  ADPA_CHECK_EQ(bias.rows(), 1);
  ADPA_CHECK_EQ(bias.cols(), a.cols());
  auto pa = a.node();
  auto pbias = bias.node();
  return Variable(MakeOp("AddBias", AddRowBroadcast(a.value(), bias.value()), {pa, pbias},
                         [pa, pbias](const Matrix& g) {
                           if (pa->requires_grad) pa->AccumulateGrad(g);
                           if (pbias->requires_grad) {
                             // Row-major float accumulation, same order as
                             // the historical scalar loop bit for bit.
                             Matrix col_sums(1, g.cols());
                             const simd::KernelTable& kernels =
                                 simd::Kernels();
                             for (int64_t r = 0; r < g.rows(); ++r) {
                               kernels.add(col_sums.Row(0), g.Row(r),
                                           g.cols());
                             }
                             pbias->AccumulateGrad(col_sums);
                           }
                         }));
}

Variable SpMM(const SparseMatrix& a, const Variable& x) {
  ADPA_CHECK_EQ(a.cols(), x.rows())
      << "SpMM shape mismatch: " << a.rows() << "x" << a.cols() << " @ "
      << x.rows() << "x" << x.cols();
  auto px = x.node();
  // The sparse operator is captured by value; CSR vectors are shared via
  // copy-on-write-free vectors, and operators are long-lived in practice.
  return Variable(MakeOp("SpMM", a.Multiply(x.value()), {px},
                         [a, px](const Matrix& g) {
                           if (px->requires_grad) {
                             px->AccumulateGrad(a.MultiplyTransposed(g));
                           }
                         }));
}

Variable Relu(const Variable& a) {
  auto pa = a.node();
  Matrix out = a.value();
  out.ApplyFn([](float v) { return v > 0.0f ? v : 0.0f; });
  return Variable(MakeOp("Relu", std::move(out), {pa}, [pa](const Matrix& g) {
    if (!pa->requires_grad) return;
    Matrix masked = g;
    for (int64_t i = 0; i < masked.size(); ++i) {
      if (pa->value.data()[i] <= 0.0f) masked.data()[i] = 0.0f;
    }
    pa->AccumulateGrad(masked);
  }));
}

Variable LeakyRelu(const Variable& a, float negative_slope) {
  auto pa = a.node();
  Matrix out = a.value();
  out.ApplyFn([negative_slope](float v) {
    return v > 0.0f ? v : negative_slope * v;
  });
  return Variable(
      MakeOp("LeakyRelu", std::move(out), {pa}, [pa, negative_slope](const Matrix& g) {
        if (!pa->requires_grad) return;
        Matrix masked = g;
        for (int64_t i = 0; i < masked.size(); ++i) {
          if (pa->value.data()[i] <= 0.0f) masked.data()[i] *= negative_slope;
        }
        pa->AccumulateGrad(masked);
      }));
}

Variable Sigmoid(const Variable& a) {
  auto pa = a.node();
  Matrix out = a.value();
  out.ApplyFn([](float v) { return 1.0f / (1.0f + std::exp(-v)); });
  Matrix saved = out;  // σ(x), reused in the backward pass
  return Variable(
      MakeOp("Sigmoid", std::move(out), {pa}, [pa, saved](const Matrix& g) {
        if (!pa->requires_grad) return;
        Matrix dx = g;
        for (int64_t i = 0; i < dx.size(); ++i) {
          const float s = saved.data()[i];
          dx.data()[i] *= s * (1.0f - s);
        }
        pa->AccumulateGrad(dx);
      }));
}

Variable Tanh(const Variable& a) {
  auto pa = a.node();
  Matrix out = a.value();
  out.ApplyFn([](float v) { return std::tanh(v); });
  Matrix saved = out;
  return Variable(MakeOp("Tanh", std::move(out), {pa}, [pa, saved](const Matrix& g) {
    if (!pa->requires_grad) return;
    Matrix dx = g;
    for (int64_t i = 0; i < dx.size(); ++i) {
      const float t = saved.data()[i];
      dx.data()[i] *= 1.0f - t * t;
    }
    pa->AccumulateGrad(dx);
  }));
}

Matrix DropoutMask(int64_t rows, int64_t cols, float p, Rng* rng) {
  ADPA_CHECK_GE(p, 0.0f);
  ADPA_CHECK_LT(p, 1.0f);
  ADPA_CHECK(rng != nullptr);
  const float keep_scale = 1.0f / (1.0f - p);
  Matrix mask(rows, cols);
  for (int64_t i = 0; i < mask.size(); ++i) {
    mask.data()[i] = rng->Bernoulli(p) ? 0.0f : keep_scale;
  }
  return mask;
}

Variable DropoutWithMask(const Variable& a, const Matrix& mask) {
  ADPA_CHECK(mask.SameShape(a.value()))
      << "dropout mask shape " << mask.rows() << "x" << mask.cols()
      << " does not match input " << a.rows() << "x" << a.cols();
  auto pa = a.node();
  return Variable(MakeOp("DropoutWithMask", Hadamard(a.value(), mask), {pa},
                         [pa, mask](const Matrix& g) {
                           if (pa->requires_grad) {
                             pa->AccumulateGrad(Hadamard(g, mask));
                           }
                         }));
}

Variable Dropout(const Variable& a, float p, bool training, Rng* rng) {
  ADPA_CHECK_GE(p, 0.0f);
  ADPA_CHECK_LT(p, 1.0f);
  if (!training || p == 0.0f) return a;
  ADPA_CHECK(rng != nullptr);
  return DropoutWithMask(a, DropoutMask(a.rows(), a.cols(), p, rng));
}

Variable ConcatCols(const std::vector<Variable>& parts) {
  ADPA_CHECK(!parts.empty());
  std::vector<Matrix> values;
  std::vector<std::shared_ptr<Node>> parents;
  values.reserve(parts.size());
  parents.reserve(parts.size());
  for (const Variable& part : parts) {
    values.push_back(part.value());
    parents.push_back(part.node());
  }
  std::vector<int64_t> offsets(parts.size() + 1, 0);
  for (size_t i = 0; i < parts.size(); ++i) {
    offsets[i + 1] = offsets[i] + parts[i].cols();
  }
  auto captured_parents = parents;
  return Variable(MakeOp("ConcatCols",
      adpa::ConcatCols(values), parents,
      [captured_parents, offsets](const Matrix& g) {
        for (size_t i = 0; i < captured_parents.size(); ++i) {
          const auto& parent = captured_parents[i];
          if (!parent->requires_grad) continue;
          Matrix slice(g.rows(), offsets[i + 1] - offsets[i]);
          const simd::KernelTable& kernels = simd::Kernels();
          for (int64_t r = 0; r < g.rows(); ++r) {
            kernels.copy(slice.Row(r), g.Row(r) + offsets[i],
                         offsets[i + 1] - offsets[i]);
          }
          parent->AccumulateGrad(slice);
        }
      }));
}

Variable SliceCols(const Variable& a, int64_t begin, int64_t end) {
  ADPA_CHECK_GE(begin, 0);
  ADPA_CHECK_LE(begin, end);
  ADPA_CHECK_LE(end, a.cols());
  auto pa = a.node();
  // Forward shares adpa::SliceCols with the no-tape serving path (bitwise
  // parity between training-eval and serving is asserted in serve_test).
  return Variable(
      MakeOp("SliceCols", adpa::SliceCols(a.value(), begin, end), {pa},
             [pa, begin, end](const Matrix& g) {
        if (!pa->requires_grad) return;
        Matrix expanded(pa->value.rows(), pa->value.cols());
        const simd::KernelTable& kernels = simd::Kernels();
        for (int64_t r = 0; r < g.rows(); ++r) {
          kernels.copy(expanded.Row(r) + begin, g.Row(r), end - begin);
        }
        pa->AccumulateGrad(expanded);
      }));
}

Variable ScaleRows(const Variable& a, const Variable& scales) {
  ADPA_CHECK_EQ(scales.cols(), 1);
  ADPA_CHECK_EQ(scales.rows(), a.rows());
  auto pa = a.node();
  auto ps = scales.node();
  // Forward shares adpa::ScaleRows with the no-tape serving path.
  return Variable(MakeOp("ScaleRows", adpa::ScaleRows(a.value(), scales.value()),
                         {pa, ps}, [pa, ps](const Matrix& g) {
    if (pa->requires_grad) {
      Matrix da = g;
      const simd::KernelTable& kernels = simd::Kernels();
      for (int64_t r = 0; r < da.rows(); ++r) {
        kernels.scale(da.Row(r), ps->value.At(r, 0), da.cols());
      }
      pa->AccumulateGrad(da);
    }
    if (ps->requires_grad) {
      Matrix ds(g.rows(), 1);
      for (int64_t r = 0; r < g.rows(); ++r) {
        double acc = 0.0;
        const float* g_row = g.Row(r);
        const float* a_row = pa->value.Row(r);
        for (int64_t c = 0; c < g.cols(); ++c) acc += g_row[c] * a_row[c];
        ds.At(r, 0) = static_cast<float>(acc);
      }
      ps->AccumulateGrad(ds);
    }
  }));
}

Variable ScaleScalar(const Variable& a, const Variable& s) {
  ADPA_CHECK_EQ(s.rows(), 1);
  ADPA_CHECK_EQ(s.cols(), 1);
  auto pa = a.node();
  auto ps = s.node();
  return Variable(MakeOp("ScaleScalar", adpa::Scale(a.value(), s.value().At(0, 0)), {pa, ps},
                         [pa, ps](const Matrix& g) {
                           if (pa->requires_grad) {
                             pa->AccumulateGrad(
                                 adpa::Scale(g, ps->value.At(0, 0)));
                           }
                           if (ps->requires_grad) {
                             Matrix ds(1, 1);
                             double acc = 0.0;
                             for (int64_t i = 0; i < g.size(); ++i) {
                               acc += static_cast<double>(g.data()[i]) *
                                      pa->value.data()[i];
                             }
                             ds.At(0, 0) = static_cast<float>(acc);
                             ps->AccumulateGrad(ds);
                           }
                         }));
}

Variable SoftmaxRows(const Variable& a) {
  auto pa = a.node();
  Matrix out = adpa::SoftmaxRows(a.value());
  Matrix saved = out;
  return Variable(MakeOp("SoftmaxRows", std::move(out), {pa}, [pa, saved](const Matrix& g) {
    if (!pa->requires_grad) return;
    // dL/dx_j = s_j * (g_j - Σ_k g_k s_k), per row.
    Matrix dx(g.rows(), g.cols());
    for (int64_t r = 0; r < g.rows(); ++r) {
      const float* s = saved.Row(r);
      const float* g_row = g.Row(r);
      double dot = 0.0;
      for (int64_t c = 0; c < g.cols(); ++c) dot += g_row[c] * s[c];
      float* dx_row = dx.Row(r);
      for (int64_t c = 0; c < g.cols(); ++c) {
        dx_row[c] = s[c] * (g_row[c] - static_cast<float>(dot));
      }
    }
    pa->AccumulateGrad(dx);
  }));
}

Variable LogSoftmaxRows(const Variable& a) {
  auto pa = a.node();
  Matrix softmax = adpa::SoftmaxRows(a.value());
  Matrix out(a.rows(), a.cols());
  for (int64_t i = 0; i < out.size(); ++i) {
    out.data()[i] = std::log(std::max(softmax.data()[i], 1e-30f));
  }
  return Variable(
      MakeOp("LogSoftmaxRows", std::move(out), {pa}, [pa, softmax](const Matrix& g) {
        if (!pa->requires_grad) return;
        // dL/dx_j = g_j - s_j * Σ_k g_k, per row.
        Matrix dx(g.rows(), g.cols());
        for (int64_t r = 0; r < g.rows(); ++r) {
          const float* s = softmax.Row(r);
          const float* g_row = g.Row(r);
          double total = 0.0;
          for (int64_t c = 0; c < g.cols(); ++c) total += g_row[c];
          float* dx_row = dx.Row(r);
          for (int64_t c = 0; c < g.cols(); ++c) {
            dx_row[c] = g_row[c] - s[c] * static_cast<float>(total);
          }
        }
        pa->AccumulateGrad(dx);
      }));
}

Variable SumAll(const Variable& a) {
  auto pa = a.node();
  Matrix out(1, 1);
  out.At(0, 0) = a.value().SumAll();
  return Variable(MakeOp("SumAll", std::move(out), {pa}, [pa](const Matrix& g) {
    if (!pa->requires_grad) return;
    Matrix ones(pa->value.rows(), pa->value.cols(), g.At(0, 0));
    pa->AccumulateGrad(ones);
  }));
}

Variable MaskedCrossEntropy(const Variable& logits,
                            const std::vector<int64_t>& labels,
                            const std::vector<int64_t>& mask_indices) {
  ADPA_CHECK(!mask_indices.empty());
  ADPA_CHECK_EQ(static_cast<int64_t>(labels.size()), logits.rows());
  auto plogits = logits.node();
  const Matrix softmax = adpa::SoftmaxRows(logits.value());
  double loss = 0.0;
  for (int64_t i : mask_indices) {
    ADPA_CHECK_GE(i, 0);
    ADPA_CHECK_LT(i, logits.rows());
    const int64_t y = labels[i];
    ADPA_CHECK_GE(y, 0);
    ADPA_CHECK_LT(y, logits.cols());
    loss -= std::log(std::max(softmax.At(i, y), 1e-30f));
  }
  loss /= static_cast<double>(mask_indices.size());
  Matrix out(1, 1);
  out.At(0, 0) = static_cast<float>(loss);
  const float inv_count = 1.0f / static_cast<float>(mask_indices.size());
  return Variable(MakeOp("MaskedCrossEntropy",
      std::move(out), {plogits},
      [plogits, softmax, labels, mask_indices, inv_count](const Matrix& g) {
        if (!plogits->requires_grad) return;
        const float scale = g.At(0, 0) * inv_count;
        Matrix dx(plogits->value.rows(), plogits->value.cols());
        for (int64_t i : mask_indices) {
          const float* s = softmax.Row(i);
          float* dx_row = dx.Row(i);
          for (int64_t c = 0; c < dx.cols(); ++c) dx_row[c] = scale * s[c];
          dx_row[labels[i]] -= scale;
        }
        plogits->AccumulateGrad(dx);
      }));
}

void Backward(const Variable& root) {
  ADPA_CHECK(root.defined());
  ADPA_CHECK(root.requires_grad())
      << "Backward called on a graph with no trainable parameters";
  // Iterative post-order DFS for the topological order.
  std::vector<Node*> order;
  std::unordered_set<Node*> visited;
  std::vector<std::pair<Node*, size_t>> stack;
  stack.emplace_back(root.node().get(), 0);
  visited.insert(root.node().get());
  while (!stack.empty()) {
    auto& [node, next_child] = stack.back();
    if (next_child < node->parents.size()) {
      Node* child = node->parents[next_child++].get();
      if (child->requires_grad && visited.insert(child).second) {
        stack.emplace_back(child, 0);
      }
    } else {
      order.push_back(node);
      stack.pop_back();
    }
  }
  // Seed d(root)/d(root) = 1.
  Matrix seed(root.value().rows(), root.value().cols(), 1.0f);
  root.node()->AccumulateGrad(seed);
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    Node* node = *it;
    if (node->backward && !node->grad.empty()) node->backward(node->grad);
  }
}

}  // namespace ag
}  // namespace adpa
