// AVX2 + FMA kernel level (256-bit lanes). Compiled with -mavx2 -mfma
// regardless of the global architecture flags; runtime dispatch
// (simd::ActiveLevel) guarantees these functions only execute on CPUs that
// support them.
//
// Precision discipline: the dense GEMM family keeps the double-accumulator
// contract by widening 8-wide float lanes into pairs of 4-wide double
// accumulators (_mm256_cvtps_pd) and accumulating with double FMAs. Per
// output element the contraction order is a fixed function of shapes, so
// results at this level are bitwise identical for any thread count; they
// differ from the portable level only by FMA contraction / lane-splitting
// rounding, which the parity suite bounds with rel-error checks.

#include <cstdint>

#include "src/core/thread_annotations.h"
#include "src/tensor/simd_kernels.h"

#if defined(__x86_64__) || defined(_M_X64)
#include <immintrin.h>

// GCC expands the float<->double conversion intrinsics through
// _mm512_undefined_pd()/_mm256_undefined_ps(), whose self-initialized
// placeholder trips -Wmaybe-uninitialized (or plain -Wuninitialized,
// depending on what the optimizer can prove) at every inlined call site
// even though the masked builtin overwrites all lanes (GCC PR105593).
// Silence the false positive for this kernel TU.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#pragma GCC diagnostic ignored "-Wuninitialized"
#endif

#include <algorithm>
#include <vector>

namespace adpa::simd::detail {
namespace {

// Register tile: 4 output rows x 12 output columns = 12 ymm double
// accumulators, plus 3 slab lanes and 1 broadcast — exactly the 16-register
// AVX2 budget.
constexpr int64_t kMr = 4;
constexpr int64_t kNr = 12;

std::vector<double>& SlabScratch() {
  thread_local std::vector<double> slab;
  return slab;
}

// Packs b[:, j0:j0+width) into a zero-padded k x kNr double slab.
void PackSlab(const float* b, int64_t k, int64_t m, int64_t j0, int64_t width,
              double* slab) {
  for (int64_t p = 0; p < k; ++p) {
    const float* b_row = b + p * m + j0;
    double* dst = slab + p * kNr;
    int64_t l = 0;
    for (; l < width; ++l) dst[l] = b_row[l];
    for (; l < kNr; ++l) dst[l] = 0.0;
  }
}

// Stores one row of kNr double accumulators to float output (width lanes).
inline void StoreRow(const __m256d acc0, const __m256d acc1,
                     const __m256d acc2, int64_t width, float* out_row) {
  if (width == kNr) {
    _mm_storeu_ps(out_row + 0, _mm256_cvtpd_ps(acc0));
    _mm_storeu_ps(out_row + 4, _mm256_cvtpd_ps(acc1));
    _mm_storeu_ps(out_row + 8, _mm256_cvtpd_ps(acc2));
    return;
  }
  double tmp[kNr];
  _mm256_storeu_pd(tmp + 0, acc0);
  _mm256_storeu_pd(tmp + 4, acc1);
  _mm256_storeu_pd(tmp + 8, acc2);
  for (int64_t l = 0; l < width; ++l) {
    out_row[l] = static_cast<float>(tmp[l]);
  }
}

ADPA_HOT void GemmRowsAvx2(const float* a, const double* ad, const float* b,
                  int64_t i_begin, int64_t i_end, int64_t k, int64_t m,
                  float* out) {
  (void)a;  // this level accumulates from the pre-widened operand
  std::vector<double>& slab_buf = SlabScratch();
  slab_buf.resize(k * kNr);  // analyze:allow(alloc): thread_local slab capacity reuse
  double* slab = slab_buf.data();
  const int64_t num_slabs = (m + kNr - 1) / kNr;
  for (int64_t s = 0; s < num_slabs; ++s) {
    const int64_t j0 = s * kNr;
    const int64_t width = std::min<int64_t>(kNr, m - j0);
    PackSlab(b, k, m, j0, width, slab);
    int64_t i0 = i_begin;
    for (; i0 + kMr <= i_end; i0 += kMr) {
      __m256d acc[kMr][3];
      for (int64_t r = 0; r < kMr; ++r) {
        acc[r][0] = _mm256_setzero_pd();
        acc[r][1] = _mm256_setzero_pd();
        acc[r][2] = _mm256_setzero_pd();
      }
      const double* a0 = ad + (i0 + 0) * k;
      const double* a1 = ad + (i0 + 1) * k;
      const double* a2 = ad + (i0 + 2) * k;
      const double* a3 = ad + (i0 + 3) * k;
      for (int64_t p = 0; p < k; ++p) {
        const double* b_row = slab + p * kNr;
        const __m256d bv0 = _mm256_loadu_pd(b_row + 0);
        const __m256d bv1 = _mm256_loadu_pd(b_row + 4);
        const __m256d bv2 = _mm256_loadu_pd(b_row + 8);
        const __m256d av0 = _mm256_set1_pd(a0[p]);
        acc[0][0] = _mm256_fmadd_pd(av0, bv0, acc[0][0]);
        acc[0][1] = _mm256_fmadd_pd(av0, bv1, acc[0][1]);
        acc[0][2] = _mm256_fmadd_pd(av0, bv2, acc[0][2]);
        const __m256d av1 = _mm256_set1_pd(a1[p]);
        acc[1][0] = _mm256_fmadd_pd(av1, bv0, acc[1][0]);
        acc[1][1] = _mm256_fmadd_pd(av1, bv1, acc[1][1]);
        acc[1][2] = _mm256_fmadd_pd(av1, bv2, acc[1][2]);
        const __m256d av2 = _mm256_set1_pd(a2[p]);
        acc[2][0] = _mm256_fmadd_pd(av2, bv0, acc[2][0]);
        acc[2][1] = _mm256_fmadd_pd(av2, bv1, acc[2][1]);
        acc[2][2] = _mm256_fmadd_pd(av2, bv2, acc[2][2]);
        const __m256d av3 = _mm256_set1_pd(a3[p]);
        acc[3][0] = _mm256_fmadd_pd(av3, bv0, acc[3][0]);
        acc[3][1] = _mm256_fmadd_pd(av3, bv1, acc[3][1]);
        acc[3][2] = _mm256_fmadd_pd(av3, bv2, acc[3][2]);
      }
      for (int64_t r = 0; r < kMr; ++r) {
        StoreRow(acc[r][0], acc[r][1], acc[r][2], width,
                 out + (i0 + r) * m + j0);
      }
    }
    // Row tail: single-row micro-kernel; per element the same sequential-k
    // FMA chain, so a row lands on the same bits whichever path computes it.
    for (; i0 < i_end; ++i0) {
      __m256d acc0 = _mm256_setzero_pd();
      __m256d acc1 = _mm256_setzero_pd();
      __m256d acc2 = _mm256_setzero_pd();
      const double* a_row = ad + i0 * k;
      for (int64_t p = 0; p < k; ++p) {
        const double* b_row = slab + p * kNr;
        const __m256d av = _mm256_set1_pd(a_row[p]);
        acc0 = _mm256_fmadd_pd(av, _mm256_loadu_pd(b_row + 0), acc0);
        acc1 = _mm256_fmadd_pd(av, _mm256_loadu_pd(b_row + 4), acc1);
        acc2 = _mm256_fmadd_pd(av, _mm256_loadu_pd(b_row + 8), acc2);
      }
      StoreRow(acc0, acc1, acc2, width, out + i0 * m + j0);
    }
  }
}

ADPA_HOT double DotAvx2(const float* a, const float* b, int64_t k) {
  // 8-wide float lanes widened into two 4-wide double accumulators (lanes
  // p%8 in 0..3 vs 4..7); the split and the final fixed-order horizontal
  // sum change the rounding relative to the strictly sequential portable
  // dot, which is exactly the cross-level difference the rel-error parity
  // suite bounds. Within this level the order is a pure function of k.
  __m256d acc_lo = _mm256_setzero_pd();
  __m256d acc_hi = _mm256_setzero_pd();
  int64_t p = 0;
  for (; p + 8 <= k; p += 8) {
    const __m256 af = _mm256_loadu_ps(a + p);
    const __m256 bf = _mm256_loadu_ps(b + p);
    const __m256d a_lo = _mm256_cvtps_pd(_mm256_castps256_ps128(af));
    const __m256d b_lo = _mm256_cvtps_pd(_mm256_castps256_ps128(bf));
    const __m256d a_hi = _mm256_cvtps_pd(_mm256_extractf128_ps(af, 1));
    const __m256d b_hi = _mm256_cvtps_pd(_mm256_extractf128_ps(bf, 1));
    acc_lo = _mm256_fmadd_pd(a_lo, b_lo, acc_lo);
    acc_hi = _mm256_fmadd_pd(a_hi, b_hi, acc_hi);
  }
  double lanes[8];
  _mm256_storeu_pd(lanes + 0, acc_lo);
  _mm256_storeu_pd(lanes + 4, acc_hi);
  double total = 0.0;
  for (int l = 0; l < 8; ++l) total += lanes[l];
  for (; p < k; ++p) total += static_cast<double>(a[p]) * b[p];
  return total;
}

ADPA_HOT void AxpyWideAvx2(double w, const float* x, int64_t m, double* acc) {
  const __m256d wv = _mm256_set1_pd(w);
  int64_t j = 0;
  for (; j + 4 <= m; j += 4) {
    const __m256d xv = _mm256_cvtps_pd(_mm_loadu_ps(x + j));
    const __m256d av = _mm256_loadu_pd(acc + j);
    _mm256_storeu_pd(acc + j, _mm256_fmadd_pd(wv, xv, av));
  }
  for (; j < m; ++j) acc[j] += w * x[j];
}

// dst[c] += w * src[c], float32 FMA lanes; each element independent.
inline void AxpyRowF32(float* dst, const float* src, float w, int64_t n) {
  const __m256 wv = _mm256_set1_ps(w);
  int64_t c = 0;
  for (; c + 8 <= n; c += 8) {
    const __m256 sv = _mm256_loadu_ps(src + c);
    const __m256 dv = _mm256_loadu_ps(dst + c);
    _mm256_storeu_ps(dst + c, _mm256_fmadd_ps(wv, sv, dv));
  }
  // Explicit fmaf keeps the tail a single rounding — the same arithmetic
  // as the fmadd lanes above — independent of contraction heuristics.
  for (; c < n; ++c) dst[c] = __builtin_fmaf(w, src[c], dst[c]);
}

constexpr int64_t kSpmmColBlock = 1024;

ADPA_HOT void SpmmRowsAvx2(const int64_t* row_ptr, const int32_t* col_idx,
                  const float* values, const float* dense, int64_t cols,
                  int64_t row_begin, int64_t row_end, float* out) {
  for (int64_t c0 = 0; c0 < cols; c0 += kSpmmColBlock) {
    const int64_t width = std::min<int64_t>(kSpmmColBlock, cols - c0);
    for (int64_t r = row_begin; r < row_end; ++r) {
      float* out_row = out + r * cols + c0;
      std::fill(out_row, out_row + width, 0.0f);
      for (int64_t p = row_ptr[r]; p < row_ptr[r + 1]; ++p) {
        AxpyRowF32(out_row, dense + int64_t{col_idx[p]} * cols + c0,
                   values[p], width);
      }
    }
  }
}

void ScaleAvx2(float* dst, float factor, int64_t n);

ADPA_HOT void SpmmAxpbyRowsAvx2(const int64_t* row_ptr, const int32_t* col_idx,
                       const float* values, const float* dense,
                       const float* residual, float alpha, float beta,
                       int64_t cols, int64_t row_begin, int64_t row_end,
                       float* out) {
  for (int64_t c0 = 0; c0 < cols; c0 += kSpmmColBlock) {
    const int64_t width = std::min<int64_t>(kSpmmColBlock, cols - c0);
    for (int64_t r = row_begin; r < row_end; ++r) {
      float* out_row = out + r * cols + c0;
      std::fill(out_row, out_row + width, 0.0f);
      for (int64_t p = row_ptr[r]; p < row_ptr[r + 1]; ++p) {
        AxpyRowF32(out_row, dense + int64_t{col_idx[p]} * cols + c0,
                   values[p], width);
      }
      // Finalize through the very same scale/axpy kernels the unfused
      // ScaleInPlace + AddScaledInPlace sequence dispatches to, so fused ==
      // unfused holds bit for bit by construction. (An open-coded
      // "equivalent" loop is not enough: -ffp-contract lets the compiler
      // contract the scalar tails of each loop differently.)
      ScaleAvx2(out_row, beta, width);
      AxpyRowF32(out_row, residual + r * cols + c0, alpha, width);
    }
  }
}

ADPA_HOT void AddAvx2(float* dst, const float* src, int64_t n) {
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(
        dst + i, _mm256_add_ps(_mm256_loadu_ps(dst + i),
                               _mm256_loadu_ps(src + i)));
  }
  for (; i < n; ++i) dst[i] += src[i];
}

ADPA_HOT void SubAvx2(float* dst, const float* src, int64_t n) {
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(
        dst + i, _mm256_sub_ps(_mm256_loadu_ps(dst + i),
                               _mm256_loadu_ps(src + i)));
  }
  for (; i < n; ++i) dst[i] -= src[i];
}

ADPA_HOT void MulAvx2(float* dst, const float* src, int64_t n) {
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(
        dst + i, _mm256_mul_ps(_mm256_loadu_ps(dst + i),
                               _mm256_loadu_ps(src + i)));
  }
  for (; i < n; ++i) dst[i] *= src[i];
}

ADPA_HOT void ScaleAvx2(float* dst, float factor, int64_t n) {
  const __m256 fv = _mm256_set1_ps(factor);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(dst + i, _mm256_mul_ps(_mm256_loadu_ps(dst + i), fv));
  }
  for (; i < n; ++i) dst[i] *= factor;
}

ADPA_HOT void AxpyAvx2(float* dst, const float* src, float factor, int64_t n) {
  AxpyRowF32(dst, src, factor, n);
}

ADPA_HOT void ScaleToAvx2(float* dst, const float* src, float factor, int64_t n) {
  const __m256 fv = _mm256_set1_ps(factor);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(dst + i, _mm256_mul_ps(_mm256_loadu_ps(src + i), fv));
  }
  for (; i < n; ++i) dst[i] = factor * src[i];
}

}  // namespace

const KernelTable kAvx2Table = {
    GemmRowsAvx2, DotAvx2,  AxpyWideAvx2, SpmmRowsAvx2, SpmmAxpbyRowsAvx2,
    AddAvx2,      SubAvx2,  MulAvx2,      ScaleAvx2,    AxpyAvx2,
    ScaleToAvx2,  CopyPortable,  // a copy is a copy at every level
};

}  // namespace adpa::simd::detail

#else  // !x86-64: the AVX2 level is never CPU-supported; alias portable.

namespace adpa::simd::detail {
const KernelTable kAvx2Table = {
    GemmRowsPortable, DotPortable,      AxpyWidePortable,
    SpmmRowsPortable, SpmmAxpbyRowsPortable,
    AddPortable,      SubPortable,      MulPortable,
    ScalePortable,    AxpyPortable,     ScaleToPortable,
    CopyPortable,
};
}  // namespace adpa::simd::detail

#endif
