#include "src/tensor/matrix.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "src/core/logging.h"
#include "src/core/random.h"
#include "src/tensor/simd.h"

namespace adpa {

Matrix::Matrix(int64_t rows, int64_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0f) {
  ADPA_CHECK_GE(rows, 0);
  ADPA_CHECK_GE(cols, 0);
}

Matrix::Matrix(int64_t rows, int64_t cols, float fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {
  ADPA_CHECK_GE(rows, 0);
  ADPA_CHECK_GE(cols, 0);
}

Matrix Matrix::FromRows(const std::vector<std::vector<float>>& rows) {
  if (rows.empty()) return Matrix();
  Matrix out(static_cast<int64_t>(rows.size()),
             static_cast<int64_t>(rows[0].size()));
  for (size_t r = 0; r < rows.size(); ++r) {
    ADPA_CHECK_EQ(rows[r].size(), rows[0].size());
    std::copy(rows[r].begin(), rows[r].end(), out.Row(r));
  }
  return out;
}

Matrix Matrix::RandomNormal(int64_t rows, int64_t cols, Rng* rng, float mean,
                            float stddev) {
  Matrix out(rows, cols);
  for (int64_t i = 0; i < out.size(); ++i) {
    out.data()[i] = static_cast<float>(rng->Normal(mean, stddev));
  }
  return out;
}

Matrix Matrix::RandomUniform(int64_t rows, int64_t cols, Rng* rng, float lo,
                             float hi) {
  Matrix out(rows, cols);
  for (int64_t i = 0; i < out.size(); ++i) {
    out.data()[i] = static_cast<float>(rng->Uniform(lo, hi));
  }
  return out;
}

Matrix Matrix::Identity(int64_t n) {
  Matrix out(n, n);
  for (int64_t i = 0; i < n; ++i) out.At(i, i) = 1.0f;
  return out;
}

void Matrix::CheckFinite(const char* context) const {
  const float* values = data_.data();
  for (int64_t i = 0; i < size(); ++i) {
    ADPA_CHECK(std::isfinite(values[i]))
        << context << ": non-finite value " << values[i] << " at ("
        << i / cols_ << ", " << i % cols_ << ") of " << rows_ << "x" << cols_;
  }
}

float& Matrix::CheckedAt(int64_t r, int64_t c) {
  ADPA_CHECK_GE(r, 0);
  ADPA_CHECK_LT(r, rows_);
  ADPA_CHECK_GE(c, 0);
  ADPA_CHECK_LT(c, cols_);
  return At(r, c);
}

void Matrix::Fill(float value) {
  float* values = data_.data();
  ParallelFor(0, size(), kElementwiseGrain, [&](int64_t begin, int64_t end) {
    std::fill(values + begin, values + end, value);
  });
}

void Matrix::Resize(int64_t rows, int64_t cols) {
  ADPA_CHECK_GE(rows, 0);
  ADPA_CHECK_GE(cols, 0);
  rows_ = rows;
  cols_ = cols;
  // assign() reuses existing capacity; growth beyond the high-water mark is
  // the only case that allocates.
  data_.assign(static_cast<size_t>(rows * cols), 0.0f);  // analyze:allow(alloc): capacity reuse
}

void Matrix::AddInPlace(const Matrix& other) {
  ADPA_CHECK(SameShape(other));
  float* dst = data_.data();
  const float* src = other.data_.data();
  const simd::KernelTable& kernels = simd::Kernels();
  ParallelFor(0, size(), kElementwiseGrain, [&](int64_t begin, int64_t end) {
    kernels.add(dst + begin, src + begin, end - begin);
  });
}

void Matrix::SubInPlace(const Matrix& other) {
  ADPA_CHECK(SameShape(other));
  float* dst = data_.data();
  const float* src = other.data_.data();
  const simd::KernelTable& kernels = simd::Kernels();
  ParallelFor(0, size(), kElementwiseGrain, [&](int64_t begin, int64_t end) {
    kernels.sub(dst + begin, src + begin, end - begin);
  });
}

void Matrix::MulInPlace(const Matrix& other) {
  ADPA_CHECK(SameShape(other));
  float* dst = data_.data();
  const float* src = other.data_.data();
  const simd::KernelTable& kernels = simd::Kernels();
  ParallelFor(0, size(), kElementwiseGrain, [&](int64_t begin, int64_t end) {
    kernels.mul(dst + begin, src + begin, end - begin);
  });
}

void Matrix::ScaleInPlace(float factor) {
  float* values = data_.data();
  const simd::KernelTable& kernels = simd::Kernels();
  ParallelFor(0, size(), kElementwiseGrain, [&](int64_t begin, int64_t end) {
    kernels.scale(values + begin, factor, end - begin);
  });
}

void Matrix::AddScaledInPlace(const Matrix& other, float factor) {
  ADPA_CHECK(SameShape(other));
  float* dst = data_.data();
  const float* src = other.data_.data();
  const simd::KernelTable& kernels = simd::Kernels();
  ParallelFor(0, size(), kElementwiseGrain, [&](int64_t begin, int64_t end) {
    kernels.axpy(dst + begin, src + begin, factor, end - begin);
  });
}

void Matrix::Apply(const std::function<float(float)>& fn) {
  ApplyFn([&fn](float value) { return fn(value); });
}

float Matrix::SumAll() const {
  double total = 0.0;
  for (float value : data_) total += value;
  return static_cast<float>(total);
}

float Matrix::MaxAll() const {
  ADPA_CHECK_GT(size(), 0);
  return *std::max_element(data_.begin(), data_.end());
}

float Matrix::FrobeniusNorm() const {
  double total = 0.0;
  for (float value : data_) total += static_cast<double>(value) * value;
  return static_cast<float>(std::sqrt(total));
}

Matrix Matrix::Transposed() const {
  Matrix out(cols_, rows_);
  // Partition over output rows; each is written by exactly one thread.
  ParallelFor(0, cols_, 16, [&](int64_t begin, int64_t end) {
    for (int64_t c = begin; c < end; ++c) {
      float* out_row = out.Row(c);
      for (int64_t r = 0; r < rows_; ++r) out_row[r] = At(r, c);
    }
  });
  return out;
}

Matrix Matrix::SliceRows(int64_t begin, int64_t end) const {
  ADPA_CHECK_GE(begin, 0);
  ADPA_CHECK_LE(begin, end);
  ADPA_CHECK_LE(end, rows_);
  Matrix out(end - begin, cols_);
  std::copy(Row(begin), Row(begin) + (end - begin) * cols_, out.data());
  return out;
}

std::string Matrix::ToString(int max_rows, int max_cols) const {
  std::ostringstream out;
  out << "Matrix(" << rows_ << "x" << cols_ << ")\n";
  const int64_t show_rows = std::min<int64_t>(rows_, max_rows);
  const int64_t show_cols = std::min<int64_t>(cols_, max_cols);
  for (int64_t r = 0; r < show_rows; ++r) {
    out << " [";
    for (int64_t c = 0; c < show_cols; ++c) {
      if (c > 0) out << ", ";
      out << At(r, c);
    }
    if (show_cols < cols_) out << ", ...";
    out << "]\n";
  }
  if (show_rows < rows_) out << " ...\n";
  return out.str();
}

namespace {

// Per-thread widening scratch: MatMul converts `a` to double here once per
// call, and steady-state calls of the same shape never allocate.
std::vector<double>& WidenScratch() {
  thread_local std::vector<double> scratch;
  return scratch;
}

// Widens a float buffer into the calling thread's scratch, in parallel.
// Pure per-element conversion, so trivially thread-count independent.
const double* WidenToDouble(const float* src, int64_t count) {
  std::vector<double>& buf = WidenScratch();
  buf.resize(count);  // analyze:allow(alloc): thread_local widen scratch capacity reuse
  double* dst = buf.data();
  ParallelFor(0, count, kElementwiseGrain, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) dst[i] = src[i];
  });
  return dst;
}

}  // namespace

void MatMulInto(const Matrix& a, const Matrix& b, Matrix* out) {
  ADPA_CHECK_EQ(a.cols(), b.rows());
  ADPA_CHECK(out != &a && out != &b);
  out->Resize(a.rows(), b.cols());
  const int64_t n = a.rows(), k = a.cols(), m = b.cols();
  if (n == 0 || k == 0 || m == 0) return;
  const double* ad = WidenToDouble(a.data(), n * k);
  const simd::KernelTable& kernels = simd::Kernels();
  const float* b_data = b.data();
  float* out_data = out->data();
  // Partition over output rows. Every level's gemm_rows computes each
  // output element as the same sequential-k chain whichever micro-kernel
  // path (full tile or row tail) covers its row, so any row partition —
  // and any thread count — produces bitwise-identical results. The grain
  // keeps ~kMinCostPerChunk FLOPs per chunk (2*k*m per row).
  ParallelFor(0, n, GrainForCost(2 * k * m),
              [&](int64_t row_begin, int64_t row_end) {
                kernels.gemm_rows(a.data(), ad, b_data, row_begin, row_end, k,
                                  m, out_data);
              });
}

Matrix MatMul(const Matrix& a, const Matrix& b) {
  Matrix out;
  MatMulInto(a, b, &out);
  return out;
}

Matrix MatMulSparseA(const Matrix& a, const Matrix& b) {
  ADPA_CHECK_EQ(a.cols(), b.rows());
  Matrix out(a.rows(), b.cols());
  const int64_t n = a.rows(), k = a.cols(), m = b.cols();
  if (n == 0 || k == 0 || m == 0) return out;
  const simd::KernelTable& kernels = simd::Kernels();
  ParallelFor(0, n, GrainForCost(2 * k * m),
              [&](int64_t row_begin, int64_t row_end) {
    std::vector<double> acc(m);
    for (int64_t i = row_begin; i < row_end; ++i) {
      std::fill(acc.begin(), acc.end(), 0.0);
      const float* a_row = a.Row(i);
      for (int64_t p = 0; p < k; ++p) {
        const float a_ip = a_row[p];
        if (a_ip == 0.0f) continue;  // a zero term adds exactly nothing
        kernels.axpy_wide(a_ip, b.Row(p), m, acc.data());
      }
      float* out_row = out.Row(i);
      for (int64_t j = 0; j < m; ++j) {
        out_row[j] = static_cast<float>(acc[j]);
      }
    }
  });
  return out;
}

Matrix MatMulTransposeA(const Matrix& a, const Matrix& b) {
  ADPA_CHECK_EQ(a.rows(), b.rows());
  Matrix out(a.cols(), b.cols());
  const int64_t n = a.rows(), k = a.cols(), m = b.cols();
  if (n == 0 || k == 0 || m == 0) return out;
  const simd::KernelTable& kernels = simd::Kernels();
  // Partition over fixed-size blocks of output rows (columns p of `a`).
  // Each block sweeps all n inputs once, accumulating its block x m tile in
  // a local double scratch; p-order within a block and i-order within a
  // sweep are fixed, so results do not depend on the thread count.
  constexpr int64_t kBlock = 32;
  const int64_t num_blocks = (k + kBlock - 1) / kBlock;
  ParallelFor(0, num_blocks, GrainForCost(2 * n * kBlock * m),
              [&](int64_t block_begin, int64_t block_end) {
    std::vector<double> acc(kBlock * m);
    for (int64_t blk = block_begin; blk < block_end; ++blk) {
      const int64_t p0 = blk * kBlock;
      const int64_t p1 = std::min(p0 + kBlock, k);
      std::fill(acc.begin(), acc.begin() + (p1 - p0) * m, 0.0);
      for (int64_t i = 0; i < n; ++i) {
        const float* a_row = a.Row(i);
        const float* b_row = b.Row(i);
        for (int64_t p = p0; p < p1; ++p) {
          const float a_ip = a_row[p];
          // Skipping exact zeros (ReLU/dropout gradients are full of them)
          // leaves the double accumulator bit-for-bit unchanged.
          if (a_ip == 0.0f) continue;
          kernels.axpy_wide(a_ip, b_row, m, acc.data() + (p - p0) * m);
        }
      }
      for (int64_t p = p0; p < p1; ++p) {
        float* out_row = out.Row(p);
        const double* acc_row = acc.data() + (p - p0) * m;
        for (int64_t j = 0; j < m; ++j) {
          out_row[j] = static_cast<float>(acc_row[j]);
        }
      }
    }
  });
  return out;
}

Matrix MatMulTransposeB(const Matrix& a, const Matrix& b) {
  ADPA_CHECK_EQ(a.cols(), b.cols());
  Matrix out(a.rows(), b.rows());
  const int64_t n = a.rows(), k = a.cols(), m = b.rows();
  if (n == 0 || k == 0 || m == 0) return out;
  const simd::KernelTable& kernels = simd::Kernels();
  ParallelFor(0, n, GrainForCost(2 * k * m),
              [&](int64_t row_begin, int64_t row_end) {
    for (int64_t i = row_begin; i < row_end; ++i) {
      const float* a_row = a.Row(i);
      float* out_row = out.Row(i);
      for (int64_t j = 0; j < m; ++j) {
        out_row[j] = static_cast<float>(kernels.dot(a_row, b.Row(j), k));
      }
    }
  });
  return out;
}

Matrix Add(const Matrix& a, const Matrix& b) {
  Matrix out = a;
  out.AddInPlace(b);
  return out;
}

Matrix Sub(const Matrix& a, const Matrix& b) {
  Matrix out = a;
  out.SubInPlace(b);
  return out;
}

Matrix Hadamard(const Matrix& a, const Matrix& b) {
  Matrix out = a;
  out.MulInPlace(b);
  return out;
}

Matrix Scale(const Matrix& a, float factor) {
  Matrix out = a;
  out.ScaleInPlace(factor);
  return out;
}

Matrix ConcatCols(const Matrix& a, const Matrix& b) {
  return ConcatCols(std::vector<Matrix>{a, b});
}

Matrix ConcatCols(const std::vector<Matrix>& parts) {
  std::vector<const Matrix*> views;
  views.reserve(parts.size());
  for (const Matrix& part : parts) views.push_back(&part);
  Matrix out;
  ConcatColsInto(views, &out);
  return out;
}

void ConcatColsInto(const std::vector<const Matrix*>& parts, Matrix* out) {
  ADPA_CHECK(!parts.empty());
  const int64_t rows = parts[0]->rows();
  int64_t total_cols = 0;
  for (const Matrix* part : parts) {
    ADPA_CHECK(part != out);
    ADPA_CHECK_EQ(part->rows(), rows);
    total_cols += part->cols();
  }
  out->Resize(rows, total_cols);
  const simd::KernelTable& kernels = simd::Kernels();
  for (int64_t r = 0; r < rows; ++r) {
    float* dst = out->Row(r);
    for (const Matrix* part : parts) {
      kernels.copy(dst, part->Row(r), part->cols());
      dst += part->cols();
    }
  }
}

Matrix AddRowBroadcast(const Matrix& a, const Matrix& row) {
  Matrix out = a;
  AddRowBroadcastInPlace(&out, row);
  return out;
}

void AddRowBroadcastInPlace(Matrix* a, const Matrix& row) {
  ADPA_CHECK_EQ(row.rows(), 1);
  ADPA_CHECK_EQ(row.cols(), a->cols());
  const simd::KernelTable& kernels = simd::Kernels();
  for (int64_t r = 0; r < a->rows(); ++r) {
    kernels.add(a->Row(r), row.data(), a->cols());
  }
}

Matrix SoftmaxRows(const Matrix& a) {
  Matrix out;
  SoftmaxRowsInto(a, &out);
  return out;
}

void SoftmaxRowsInto(const Matrix& a, Matrix* out) {
  ADPA_CHECK(out != &a);
  out->Resize(a.rows(), a.cols());
  // exp dominates: ~16 scalar-op-equivalents per element.
  ParallelFor(0, a.rows(), GrainForCost(16 * a.cols()),
              [&](int64_t row_begin, int64_t row_end) {
    for (int64_t r = row_begin; r < row_end; ++r) {
      const float* in_row = a.Row(r);
      float* out_row = out->Row(r);
      float max_value = in_row[0];
      for (int64_t c = 1; c < a.cols(); ++c)
        max_value = std::max(max_value, in_row[c]);
      double total = 0.0;
      for (int64_t c = 0; c < a.cols(); ++c) {
        out_row[c] = std::exp(in_row[c] - max_value);
        total += out_row[c];
      }
      const float inv = static_cast<float>(1.0 / total);
      for (int64_t c = 0; c < a.cols(); ++c) out_row[c] *= inv;
    }
  });
}

Matrix ScaleRows(const Matrix& a, const Matrix& scales) {
  Matrix out;
  ScaleRowsInto(a, scales, &out);
  return out;
}

void ScaleRowsInto(const Matrix& a, const Matrix& scales, Matrix* out) {
  ADPA_CHECK_EQ(scales.cols(), 1);
  ADPA_CHECK_EQ(scales.rows(), a.rows());
  ADPA_CHECK(out != &a && out != &scales);
  out->Resize(a.rows(), a.cols());
  const simd::KernelTable& kernels = simd::Kernels();
  for (int64_t r = 0; r < a.rows(); ++r) {
    kernels.scale_to(out->Row(r), a.Row(r), scales.At(r, 0), a.cols());
  }
}

Matrix SliceCols(const Matrix& a, int64_t begin, int64_t end) {
  Matrix out;
  SliceColsInto(a, begin, end, &out);
  return out;
}

void SliceColsInto(const Matrix& a, int64_t begin, int64_t end, Matrix* out) {
  ADPA_CHECK_GE(begin, 0);
  ADPA_CHECK_LE(begin, end);
  ADPA_CHECK_LE(end, a.cols());
  ADPA_CHECK(out != &a);
  out->Resize(a.rows(), end - begin);
  const simd::KernelTable& kernels = simd::Kernels();
  for (int64_t r = 0; r < a.rows(); ++r) {
    kernels.copy(out->Row(r), a.Row(r) + begin, end - begin);
  }
}

Matrix GatherRows(const Matrix& a, const std::vector<int64_t>& rows) {
  Matrix out;
  GatherRowsInto(a, rows, &out);
  return out;
}

void GatherRowsInto(const Matrix& a, const std::vector<int64_t>& rows,
                    Matrix* out) {
  ADPA_CHECK(out != &a);
  out->Resize(static_cast<int64_t>(rows.size()), a.cols());
  const simd::KernelTable& kernels = simd::Kernels();
  for (size_t i = 0; i < rows.size(); ++i) {
    const int64_t r = rows[i];
    ADPA_CHECK_GE(r, 0);
    ADPA_CHECK_LT(r, a.rows());
    kernels.copy(out->Row(static_cast<int64_t>(i)), a.Row(r), a.cols());
  }
}

bool AllClose(const Matrix& a, const Matrix& b, float tolerance) {
  if (!a.SameShape(b)) return false;
  for (int64_t i = 0; i < a.size(); ++i) {
    if (std::fabs(a.data()[i] - b.data()[i]) > tolerance) return false;
  }
  return true;
}

}  // namespace adpa
