#include "src/tensor/matrix.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "src/core/logging.h"
#include "src/core/random.h"

namespace adpa {

Matrix::Matrix(int64_t rows, int64_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0f) {
  ADPA_CHECK_GE(rows, 0);
  ADPA_CHECK_GE(cols, 0);
}

Matrix::Matrix(int64_t rows, int64_t cols, float fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {
  ADPA_CHECK_GE(rows, 0);
  ADPA_CHECK_GE(cols, 0);
}

Matrix Matrix::FromRows(const std::vector<std::vector<float>>& rows) {
  if (rows.empty()) return Matrix();
  Matrix out(static_cast<int64_t>(rows.size()),
             static_cast<int64_t>(rows[0].size()));
  for (size_t r = 0; r < rows.size(); ++r) {
    ADPA_CHECK_EQ(rows[r].size(), rows[0].size());
    std::copy(rows[r].begin(), rows[r].end(), out.Row(r));
  }
  return out;
}

Matrix Matrix::RandomNormal(int64_t rows, int64_t cols, Rng* rng, float mean,
                            float stddev) {
  Matrix out(rows, cols);
  for (int64_t i = 0; i < out.size(); ++i) {
    out.data()[i] = static_cast<float>(rng->Normal(mean, stddev));
  }
  return out;
}

Matrix Matrix::RandomUniform(int64_t rows, int64_t cols, Rng* rng, float lo,
                             float hi) {
  Matrix out(rows, cols);
  for (int64_t i = 0; i < out.size(); ++i) {
    out.data()[i] = static_cast<float>(rng->Uniform(lo, hi));
  }
  return out;
}

Matrix Matrix::Identity(int64_t n) {
  Matrix out(n, n);
  for (int64_t i = 0; i < n; ++i) out.At(i, i) = 1.0f;
  return out;
}

float& Matrix::CheckedAt(int64_t r, int64_t c) {
  ADPA_CHECK_GE(r, 0);
  ADPA_CHECK_LT(r, rows_);
  ADPA_CHECK_GE(c, 0);
  ADPA_CHECK_LT(c, cols_);
  return At(r, c);
}

void Matrix::Fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

void Matrix::AddInPlace(const Matrix& other) {
  ADPA_CHECK(SameShape(other));
  for (int64_t i = 0; i < size(); ++i) data_[i] += other.data_[i];
}

void Matrix::SubInPlace(const Matrix& other) {
  ADPA_CHECK(SameShape(other));
  for (int64_t i = 0; i < size(); ++i) data_[i] -= other.data_[i];
}

void Matrix::MulInPlace(const Matrix& other) {
  ADPA_CHECK(SameShape(other));
  for (int64_t i = 0; i < size(); ++i) data_[i] *= other.data_[i];
}

void Matrix::ScaleInPlace(float factor) {
  for (float& value : data_) value *= factor;
}

void Matrix::AddScaledInPlace(const Matrix& other, float factor) {
  ADPA_CHECK(SameShape(other));
  for (int64_t i = 0; i < size(); ++i) data_[i] += factor * other.data_[i];
}

void Matrix::Apply(const std::function<float(float)>& fn) {
  for (float& value : data_) value = fn(value);
}

float Matrix::SumAll() const {
  double total = 0.0;
  for (float value : data_) total += value;
  return static_cast<float>(total);
}

float Matrix::MaxAll() const {
  ADPA_CHECK_GT(size(), 0);
  return *std::max_element(data_.begin(), data_.end());
}

float Matrix::FrobeniusNorm() const {
  double total = 0.0;
  for (float value : data_) total += static_cast<double>(value) * value;
  return static_cast<float>(std::sqrt(total));
}

Matrix Matrix::Transposed() const {
  Matrix out(cols_, rows_);
  for (int64_t r = 0; r < rows_; ++r) {
    for (int64_t c = 0; c < cols_; ++c) out.At(c, r) = At(r, c);
  }
  return out;
}

Matrix Matrix::SliceRows(int64_t begin, int64_t end) const {
  ADPA_CHECK_GE(begin, 0);
  ADPA_CHECK_LE(begin, end);
  ADPA_CHECK_LE(end, rows_);
  Matrix out(end - begin, cols_);
  std::copy(Row(begin), Row(begin) + (end - begin) * cols_, out.data());
  return out;
}

std::string Matrix::ToString(int max_rows, int max_cols) const {
  std::ostringstream out;
  out << "Matrix(" << rows_ << "x" << cols_ << ")\n";
  const int64_t show_rows = std::min<int64_t>(rows_, max_rows);
  const int64_t show_cols = std::min<int64_t>(cols_, max_cols);
  for (int64_t r = 0; r < show_rows; ++r) {
    out << " [";
    for (int64_t c = 0; c < show_cols; ++c) {
      if (c > 0) out << ", ";
      out << At(r, c);
    }
    if (show_cols < cols_) out << ", ...";
    out << "]\n";
  }
  if (show_rows < rows_) out << " ...\n";
  return out.str();
}

Matrix MatMul(const Matrix& a, const Matrix& b) {
  ADPA_CHECK_EQ(a.cols(), b.rows());
  Matrix out(a.rows(), b.cols());
  const int64_t n = a.rows(), k = a.cols(), m = b.cols();
  for (int64_t i = 0; i < n; ++i) {
    float* out_row = out.Row(i);
    const float* a_row = a.Row(i);
    for (int64_t p = 0; p < k; ++p) {
      const float a_ip = a_row[p];
      if (a_ip == 0.0f) continue;
      const float* b_row = b.Row(p);
      for (int64_t j = 0; j < m; ++j) out_row[j] += a_ip * b_row[j];
    }
  }
  return out;
}

Matrix MatMulTransposeA(const Matrix& a, const Matrix& b) {
  ADPA_CHECK_EQ(a.rows(), b.rows());
  Matrix out(a.cols(), b.cols());
  const int64_t n = a.rows(), k = a.cols(), m = b.cols();
  for (int64_t i = 0; i < n; ++i) {
    const float* a_row = a.Row(i);
    const float* b_row = b.Row(i);
    for (int64_t p = 0; p < k; ++p) {
      const float a_ip = a_row[p];
      if (a_ip == 0.0f) continue;
      float* out_row = out.Row(p);
      for (int64_t j = 0; j < m; ++j) out_row[j] += a_ip * b_row[j];
    }
  }
  return out;
}

Matrix MatMulTransposeB(const Matrix& a, const Matrix& b) {
  ADPA_CHECK_EQ(a.cols(), b.cols());
  Matrix out(a.rows(), b.rows());
  const int64_t n = a.rows(), k = a.cols(), m = b.rows();
  for (int64_t i = 0; i < n; ++i) {
    const float* a_row = a.Row(i);
    float* out_row = out.Row(i);
    for (int64_t j = 0; j < m; ++j) {
      const float* b_row = b.Row(j);
      double acc = 0.0;
      for (int64_t p = 0; p < k; ++p) acc += a_row[p] * b_row[p];
      out_row[j] = static_cast<float>(acc);
    }
  }
  return out;
}

Matrix Add(const Matrix& a, const Matrix& b) {
  Matrix out = a;
  out.AddInPlace(b);
  return out;
}

Matrix Sub(const Matrix& a, const Matrix& b) {
  Matrix out = a;
  out.SubInPlace(b);
  return out;
}

Matrix Hadamard(const Matrix& a, const Matrix& b) {
  Matrix out = a;
  out.MulInPlace(b);
  return out;
}

Matrix Scale(const Matrix& a, float factor) {
  Matrix out = a;
  out.ScaleInPlace(factor);
  return out;
}

Matrix ConcatCols(const Matrix& a, const Matrix& b) {
  return ConcatCols(std::vector<Matrix>{a, b});
}

Matrix ConcatCols(const std::vector<Matrix>& parts) {
  ADPA_CHECK(!parts.empty());
  const int64_t rows = parts[0].rows();
  int64_t total_cols = 0;
  for (const Matrix& part : parts) {
    ADPA_CHECK_EQ(part.rows(), rows);
    total_cols += part.cols();
  }
  Matrix out(rows, total_cols);
  for (int64_t r = 0; r < rows; ++r) {
    float* dst = out.Row(r);
    for (const Matrix& part : parts) {
      std::copy(part.Row(r), part.Row(r) + part.cols(), dst);
      dst += part.cols();
    }
  }
  return out;
}

Matrix AddRowBroadcast(const Matrix& a, const Matrix& row) {
  ADPA_CHECK_EQ(row.rows(), 1);
  ADPA_CHECK_EQ(row.cols(), a.cols());
  Matrix out = a;
  for (int64_t r = 0; r < a.rows(); ++r) {
    float* out_row = out.Row(r);
    for (int64_t c = 0; c < a.cols(); ++c) out_row[c] += row.At(0, c);
  }
  return out;
}

Matrix SoftmaxRows(const Matrix& a) {
  Matrix out(a.rows(), a.cols());
  for (int64_t r = 0; r < a.rows(); ++r) {
    const float* in_row = a.Row(r);
    float* out_row = out.Row(r);
    float max_value = in_row[0];
    for (int64_t c = 1; c < a.cols(); ++c)
      max_value = std::max(max_value, in_row[c]);
    double total = 0.0;
    for (int64_t c = 0; c < a.cols(); ++c) {
      out_row[c] = std::exp(in_row[c] - max_value);
      total += out_row[c];
    }
    const float inv = static_cast<float>(1.0 / total);
    for (int64_t c = 0; c < a.cols(); ++c) out_row[c] *= inv;
  }
  return out;
}

bool AllClose(const Matrix& a, const Matrix& b, float tolerance) {
  if (!a.SameShape(b)) return false;
  for (int64_t i = 0; i < a.size(); ++i) {
    if (std::fabs(a.data()[i] - b.data()[i]) > tolerance) return false;
  }
  return true;
}

}  // namespace adpa
