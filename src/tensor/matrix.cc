#include "src/tensor/matrix.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "src/core/logging.h"
#include "src/core/random.h"

namespace adpa {

Matrix::Matrix(int64_t rows, int64_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0f) {
  ADPA_CHECK_GE(rows, 0);
  ADPA_CHECK_GE(cols, 0);
}

Matrix::Matrix(int64_t rows, int64_t cols, float fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {
  ADPA_CHECK_GE(rows, 0);
  ADPA_CHECK_GE(cols, 0);
}

Matrix Matrix::FromRows(const std::vector<std::vector<float>>& rows) {
  if (rows.empty()) return Matrix();
  Matrix out(static_cast<int64_t>(rows.size()),
             static_cast<int64_t>(rows[0].size()));
  for (size_t r = 0; r < rows.size(); ++r) {
    ADPA_CHECK_EQ(rows[r].size(), rows[0].size());
    std::copy(rows[r].begin(), rows[r].end(), out.Row(r));
  }
  return out;
}

Matrix Matrix::RandomNormal(int64_t rows, int64_t cols, Rng* rng, float mean,
                            float stddev) {
  Matrix out(rows, cols);
  for (int64_t i = 0; i < out.size(); ++i) {
    out.data()[i] = static_cast<float>(rng->Normal(mean, stddev));
  }
  return out;
}

Matrix Matrix::RandomUniform(int64_t rows, int64_t cols, Rng* rng, float lo,
                             float hi) {
  Matrix out(rows, cols);
  for (int64_t i = 0; i < out.size(); ++i) {
    out.data()[i] = static_cast<float>(rng->Uniform(lo, hi));
  }
  return out;
}

Matrix Matrix::Identity(int64_t n) {
  Matrix out(n, n);
  for (int64_t i = 0; i < n; ++i) out.At(i, i) = 1.0f;
  return out;
}

void Matrix::CheckFinite(const char* context) const {
  const float* values = data_.data();
  for (int64_t i = 0; i < size(); ++i) {
    ADPA_CHECK(std::isfinite(values[i]))
        << context << ": non-finite value " << values[i] << " at ("
        << i / cols_ << ", " << i % cols_ << ") of " << rows_ << "x" << cols_;
  }
}

float& Matrix::CheckedAt(int64_t r, int64_t c) {
  ADPA_CHECK_GE(r, 0);
  ADPA_CHECK_LT(r, rows_);
  ADPA_CHECK_GE(c, 0);
  ADPA_CHECK_LT(c, cols_);
  return At(r, c);
}

void Matrix::Fill(float value) {
  float* values = data_.data();
  ParallelFor(0, size(), kElementwiseGrain, [&](int64_t begin, int64_t end) {
    std::fill(values + begin, values + end, value);
  });
}

void Matrix::AddInPlace(const Matrix& other) {
  ADPA_CHECK(SameShape(other));
  float* dst = data_.data();
  const float* src = other.data_.data();
  ParallelFor(0, size(), kElementwiseGrain, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) dst[i] += src[i];
  });
}

void Matrix::SubInPlace(const Matrix& other) {
  ADPA_CHECK(SameShape(other));
  float* dst = data_.data();
  const float* src = other.data_.data();
  ParallelFor(0, size(), kElementwiseGrain, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) dst[i] -= src[i];
  });
}

void Matrix::MulInPlace(const Matrix& other) {
  ADPA_CHECK(SameShape(other));
  float* dst = data_.data();
  const float* src = other.data_.data();
  ParallelFor(0, size(), kElementwiseGrain, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) dst[i] *= src[i];
  });
}

void Matrix::ScaleInPlace(float factor) {
  float* values = data_.data();
  ParallelFor(0, size(), kElementwiseGrain, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) values[i] *= factor;
  });
}

void Matrix::AddScaledInPlace(const Matrix& other, float factor) {
  ADPA_CHECK(SameShape(other));
  float* dst = data_.data();
  const float* src = other.data_.data();
  ParallelFor(0, size(), kElementwiseGrain, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) dst[i] += factor * src[i];
  });
}

void Matrix::Apply(const std::function<float(float)>& fn) {
  ApplyFn([&fn](float value) { return fn(value); });
}

float Matrix::SumAll() const {
  double total = 0.0;
  for (float value : data_) total += value;
  return static_cast<float>(total);
}

float Matrix::MaxAll() const {
  ADPA_CHECK_GT(size(), 0);
  return *std::max_element(data_.begin(), data_.end());
}

float Matrix::FrobeniusNorm() const {
  double total = 0.0;
  for (float value : data_) total += static_cast<double>(value) * value;
  return static_cast<float>(std::sqrt(total));
}

Matrix Matrix::Transposed() const {
  Matrix out(cols_, rows_);
  // Partition over output rows; each is written by exactly one thread.
  ParallelFor(0, cols_, 16, [&](int64_t begin, int64_t end) {
    for (int64_t c = begin; c < end; ++c) {
      float* out_row = out.Row(c);
      for (int64_t r = 0; r < rows_; ++r) out_row[r] = At(r, c);
    }
  });
  return out;
}

Matrix Matrix::SliceRows(int64_t begin, int64_t end) const {
  ADPA_CHECK_GE(begin, 0);
  ADPA_CHECK_LE(begin, end);
  ADPA_CHECK_LE(end, rows_);
  Matrix out(end - begin, cols_);
  std::copy(Row(begin), Row(begin) + (end - begin) * cols_, out.data());
  return out;
}

std::string Matrix::ToString(int max_rows, int max_cols) const {
  std::ostringstream out;
  out << "Matrix(" << rows_ << "x" << cols_ << ")\n";
  const int64_t show_rows = std::min<int64_t>(rows_, max_rows);
  const int64_t show_cols = std::min<int64_t>(cols_, max_cols);
  for (int64_t r = 0; r < show_rows; ++r) {
    out << " [";
    for (int64_t c = 0; c < show_cols; ++c) {
      if (c > 0) out << ", ";
      out << At(r, c);
    }
    if (show_cols < cols_) out << ", ...";
    out << "]\n";
  }
  if (show_rows < rows_) out << " ...\n";
  return out.str();
}

namespace {

// Register tile of the blocked GEMM micro-kernel: kGemmMr output rows by
// kGemmNr output columns of double accumulators (4x32 doubles = 1 KiB,
// within the AVX register budget after spilling the hot lanes).
constexpr int64_t kGemmMr = 4;
constexpr int64_t kGemmNr = 32;

// Widens a float buffer to double, in parallel. Pure per-element
// conversion, so trivially thread-count independent.
std::vector<double> WidenToDouble(const float* src, int64_t count) {
  std::vector<double> out(count);
  double* dst = out.data();
  ParallelFor(0, count, kElementwiseGrain, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) dst[i] = src[i];
  });
  return out;
}

// Computes output rows [i_begin, i_end) of a*b from a pre-widened `a`
// (`ad`, row-major n x k doubles) and the original float `b`. Iterates
// column slabs of kGemmNr, packing each slab into a local zero-padded
// k x kGemmNr double buffer (stays L2-resident across the row panels),
// then runs the register-tiled micro-kernel. Every output element is the
// sequential-k double dot product of its row and column, independent of
// the [i_begin, i_end) partition — so any chunking of rows over threads
// produces bitwise-identical results.
void GemmChunk(const double* ad, const Matrix& b, int64_t i_begin,
               int64_t i_end, int64_t k, int64_t m, Matrix* out) {
  std::vector<double> slab_buf(k * kGemmNr);
  double* slab = slab_buf.data();
  const int64_t num_slabs = (m + kGemmNr - 1) / kGemmNr;
  for (int64_t s = 0; s < num_slabs; ++s) {
    const int64_t j0 = s * kGemmNr;
    const int64_t width = std::min<int64_t>(kGemmNr, m - j0);
    for (int64_t p = 0; p < k; ++p) {
      const float* b_row = b.Row(p) + j0;
      double* dst = slab + p * kGemmNr;
      int64_t l = 0;
      for (; l < width; ++l) dst[l] = b_row[l];
      for (; l < kGemmNr; ++l) dst[l] = 0.0;  // padded lanes are discarded
    }
    int64_t i0 = i_begin;
    for (; i0 + kGemmMr <= i_end; i0 += kGemmMr) {
      double c[kGemmMr][kGemmNr] = {};
      const double* a0 = ad + (i0 + 0) * k;
      const double* a1 = ad + (i0 + 1) * k;
      const double* a2 = ad + (i0 + 2) * k;
      const double* a3 = ad + (i0 + 3) * k;
      for (int64_t p = 0; p < k; ++p) {
        const double* b_row = slab + p * kGemmNr;
        const double av0 = a0[p], av1 = a1[p], av2 = a2[p], av3 = a3[p];
        for (int64_t l = 0; l < kGemmNr; ++l) {
          const double bv = b_row[l];
          c[0][l] += av0 * bv;
          c[1][l] += av1 * bv;
          c[2][l] += av2 * bv;
          c[3][l] += av3 * bv;
        }
      }
      for (int64_t r = 0; r < kGemmMr; ++r) {
        float* out_row = out->Row(i0 + r) + j0;
        for (int64_t l = 0; l < width; ++l) {
          out_row[l] = static_cast<float>(c[r][l]);
        }
      }
    }
    // Row tail (< kGemmMr rows): single-row micro-kernel. Per element this
    // is the same sequential-k FMA chain as the 4-row kernel, so a row
    // lands on the same bits whichever path computes it.
    for (; i0 < i_end; ++i0) {
      double c1[kGemmNr] = {};
      const double* a_row = ad + i0 * k;
      for (int64_t p = 0; p < k; ++p) {
        const double av = a_row[p];
        const double* b_row = slab + p * kGemmNr;
        for (int64_t l = 0; l < kGemmNr; ++l) c1[l] += av * b_row[l];
      }
      float* out_row = out->Row(i0) + j0;
      for (int64_t l = 0; l < width; ++l) {
        out_row[l] = static_cast<float>(c1[l]);
      }
    }
  }
}

}  // namespace

Matrix MatMul(const Matrix& a, const Matrix& b) {
  ADPA_CHECK_EQ(a.cols(), b.rows());
  Matrix out(a.rows(), b.cols());
  const int64_t n = a.rows(), k = a.cols(), m = b.cols();
  if (n == 0 || k == 0 || m == 0) return out;
  const std::vector<double> ad = WidenToDouble(a.data(), n * k);
  // Partition over row panels (multiples of kGemmMr) so panel grouping —
  // and with it the exact instruction path per row — is independent of the
  // thread count.
  const int64_t num_panels = (n + kGemmMr - 1) / kGemmMr;
  ParallelFor(0, num_panels, 1, [&](int64_t begin, int64_t end) {
    GemmChunk(ad.data(), b, begin * kGemmMr, std::min(end * kGemmMr, n), k, m,
              &out);
  });
  return out;
}

Matrix MatMulSparseA(const Matrix& a, const Matrix& b) {
  ADPA_CHECK_EQ(a.cols(), b.rows());
  Matrix out(a.rows(), b.cols());
  const int64_t n = a.rows(), k = a.cols(), m = b.cols();
  if (n == 0 || k == 0 || m == 0) return out;
  ParallelFor(0, n, 1, [&](int64_t row_begin, int64_t row_end) {
    std::vector<double> acc(m);
    for (int64_t i = row_begin; i < row_end; ++i) {
      std::fill(acc.begin(), acc.end(), 0.0);
      const float* a_row = a.Row(i);
      for (int64_t p = 0; p < k; ++p) {
        const float a_ip = a_row[p];
        if (a_ip == 0.0f) continue;  // a zero term adds exactly nothing
        const double av = a_ip;
        const float* b_row = b.Row(p);
        for (int64_t j = 0; j < m; ++j) acc[j] += av * b_row[j];
      }
      float* out_row = out.Row(i);
      for (int64_t j = 0; j < m; ++j) {
        out_row[j] = static_cast<float>(acc[j]);
      }
    }
  });
  return out;
}

Matrix MatMulTransposeA(const Matrix& a, const Matrix& b) {
  ADPA_CHECK_EQ(a.rows(), b.rows());
  Matrix out(a.cols(), b.cols());
  const int64_t n = a.rows(), k = a.cols(), m = b.cols();
  if (n == 0 || k == 0 || m == 0) return out;
  // Partition over fixed-size blocks of output rows (columns p of `a`).
  // Each block sweeps all n inputs once, accumulating its block x m tile in
  // a local double scratch; p-order within a block and i-order within a
  // sweep are fixed, so results do not depend on the thread count.
  constexpr int64_t kBlock = 32;
  const int64_t num_blocks = (k + kBlock - 1) / kBlock;
  ParallelFor(0, num_blocks, 1, [&](int64_t block_begin, int64_t block_end) {
    std::vector<double> acc(kBlock * m);
    for (int64_t blk = block_begin; blk < block_end; ++blk) {
      const int64_t p0 = blk * kBlock;
      const int64_t p1 = std::min(p0 + kBlock, k);
      std::fill(acc.begin(), acc.begin() + (p1 - p0) * m, 0.0);
      for (int64_t i = 0; i < n; ++i) {
        const float* a_row = a.Row(i);
        const float* b_row = b.Row(i);
        for (int64_t p = p0; p < p1; ++p) {
          const float a_ip = a_row[p];
          // Skipping exact zeros (ReLU/dropout gradients are full of them)
          // leaves the double accumulator bit-for-bit unchanged.
          if (a_ip == 0.0f) continue;
          const double av = a_ip;
          double* acc_row = acc.data() + (p - p0) * m;
          for (int64_t j = 0; j < m; ++j) acc_row[j] += av * b_row[j];
        }
      }
      for (int64_t p = p0; p < p1; ++p) {
        float* out_row = out.Row(p);
        const double* acc_row = acc.data() + (p - p0) * m;
        for (int64_t j = 0; j < m; ++j) {
          out_row[j] = static_cast<float>(acc_row[j]);
        }
      }
    }
  });
  return out;
}

Matrix MatMulTransposeB(const Matrix& a, const Matrix& b) {
  ADPA_CHECK_EQ(a.cols(), b.cols());
  Matrix out(a.rows(), b.rows());
  const int64_t n = a.rows(), k = a.cols(), m = b.rows();
  if (n == 0 || k == 0 || m == 0) return out;
  ParallelFor(0, n, 1, [&](int64_t row_begin, int64_t row_end) {
    for (int64_t i = row_begin; i < row_end; ++i) {
      const float* a_row = a.Row(i);
      float* out_row = out.Row(i);
      for (int64_t j = 0; j < m; ++j) {
        const float* b_row = b.Row(j);
        double acc = 0.0;
        for (int64_t p = 0; p < k; ++p) {
          acc += static_cast<double>(a_row[p]) * b_row[p];
        }
        out_row[j] = static_cast<float>(acc);
      }
    }
  });
  return out;
}

Matrix Add(const Matrix& a, const Matrix& b) {
  Matrix out = a;
  out.AddInPlace(b);
  return out;
}

Matrix Sub(const Matrix& a, const Matrix& b) {
  Matrix out = a;
  out.SubInPlace(b);
  return out;
}

Matrix Hadamard(const Matrix& a, const Matrix& b) {
  Matrix out = a;
  out.MulInPlace(b);
  return out;
}

Matrix Scale(const Matrix& a, float factor) {
  Matrix out = a;
  out.ScaleInPlace(factor);
  return out;
}

Matrix ConcatCols(const Matrix& a, const Matrix& b) {
  return ConcatCols(std::vector<Matrix>{a, b});
}

Matrix ConcatCols(const std::vector<Matrix>& parts) {
  ADPA_CHECK(!parts.empty());
  const int64_t rows = parts[0].rows();
  int64_t total_cols = 0;
  for (const Matrix& part : parts) {
    ADPA_CHECK_EQ(part.rows(), rows);
    total_cols += part.cols();
  }
  Matrix out(rows, total_cols);
  for (int64_t r = 0; r < rows; ++r) {
    float* dst = out.Row(r);
    for (const Matrix& part : parts) {
      std::copy(part.Row(r), part.Row(r) + part.cols(), dst);
      dst += part.cols();
    }
  }
  return out;
}

Matrix AddRowBroadcast(const Matrix& a, const Matrix& row) {
  ADPA_CHECK_EQ(row.rows(), 1);
  ADPA_CHECK_EQ(row.cols(), a.cols());
  Matrix out = a;
  for (int64_t r = 0; r < a.rows(); ++r) {
    float* out_row = out.Row(r);
    for (int64_t c = 0; c < a.cols(); ++c) out_row[c] += row.At(0, c);
  }
  return out;
}

Matrix SoftmaxRows(const Matrix& a) {
  Matrix out(a.rows(), a.cols());
  ParallelFor(0, a.rows(), 8, [&](int64_t row_begin, int64_t row_end) {
    for (int64_t r = row_begin; r < row_end; ++r) {
      const float* in_row = a.Row(r);
      float* out_row = out.Row(r);
      float max_value = in_row[0];
      for (int64_t c = 1; c < a.cols(); ++c)
        max_value = std::max(max_value, in_row[c]);
      double total = 0.0;
      for (int64_t c = 0; c < a.cols(); ++c) {
        out_row[c] = std::exp(in_row[c] - max_value);
        total += out_row[c];
      }
      const float inv = static_cast<float>(1.0 / total);
      for (int64_t c = 0; c < a.cols(); ++c) out_row[c] *= inv;
    }
  });
  return out;
}

Matrix ScaleRows(const Matrix& a, const Matrix& scales) {
  ADPA_CHECK_EQ(scales.cols(), 1);
  ADPA_CHECK_EQ(scales.rows(), a.rows());
  Matrix out = a;
  for (int64_t r = 0; r < out.rows(); ++r) {
    const float s = scales.At(r, 0);
    float* row = out.Row(r);
    for (int64_t c = 0; c < out.cols(); ++c) row[c] *= s;
  }
  return out;
}

Matrix SliceCols(const Matrix& a, int64_t begin, int64_t end) {
  ADPA_CHECK_GE(begin, 0);
  ADPA_CHECK_LE(begin, end);
  ADPA_CHECK_LE(end, a.cols());
  Matrix out(a.rows(), end - begin);
  for (int64_t r = 0; r < a.rows(); ++r) {
    std::copy(a.Row(r) + begin, a.Row(r) + end, out.Row(r));
  }
  return out;
}

Matrix GatherRows(const Matrix& a, const std::vector<int64_t>& rows) {
  Matrix out(static_cast<int64_t>(rows.size()), a.cols());
  for (size_t i = 0; i < rows.size(); ++i) {
    const int64_t r = rows[i];
    ADPA_CHECK_GE(r, 0);
    ADPA_CHECK_LT(r, a.rows());
    std::copy(a.Row(r), a.Row(r) + a.cols(), out.Row(static_cast<int64_t>(i)));
  }
  return out;
}

bool AllClose(const Matrix& a, const Matrix& b, float tolerance) {
  if (!a.SameShape(b)) return false;
  for (int64_t i = 0; i < a.size(); ++i) {
    if (std::fabs(a.data()[i] - b.data()[i]) > tolerance) return false;
  }
  return true;
}

}  // namespace adpa
