#pragma once
#include <cstdint>
#include <memory>
#include <vector>

#include "src/tensor/matrix.h"

namespace adpa {

/// Slot pool of reusable Matrix buffers for allocation-free hot paths
/// (DESIGN.md §12). A caller acquires matrices in a fixed order each pass;
/// Reset() rewinds the cursor without releasing capacity, so steady-state
/// passes perform zero heap allocations once every slot has grown to its
/// high-water size.
///
/// Not thread-safe: each thread owns its own Workspace (the serve path keeps
/// one in a thread_local scratch).
class Workspace {
 public:
  Workspace() = default;
  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;

  /// Returns the next slot shaped rows x cols with every element zeroed.
  /// The pointer stays valid until the Workspace is destroyed (slots are
  /// stable unique_ptrs; acquiring more slots never moves earlier ones).
  Matrix* Acquire(int64_t rows, int64_t cols);

  /// Rewinds the slot cursor to the first slot. Existing buffers keep their
  /// capacity; the next Acquire sequence reuses them in order.
  void Reset() { next_ = 0; }

  /// Number of slots ever created (high-water mark across passes).
  int64_t slots() const { return static_cast<int64_t>(slots_.size()); }

 private:
  std::vector<std::unique_ptr<Matrix>> slots_;
  size_t next_ = 0;
};

}  // namespace adpa
