#pragma once
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/tensor/autograd.h"
#include "src/tensor/matrix.h"

namespace adpa {
namespace ag {

/// Universal finite-difference gradient checking.
///
/// Every backward closure in src/tensor/autograd.cc is hand-written, and a
/// sign / transpose / scaling slip there degrades results *silently* — the
/// model still trains, just toward the wrong optimum (the Aᵀ-vs-A failure
/// mode of directed propagation). This harness verifies each closure
/// against central differences of the forward math:
///
///     dL/dx_i  ≈  (L(x_i + h) − L(x_i − h)) / (2h)
///
/// The forward pass runs in the engine's native float32; the difference
/// quotient itself is formed in double so the comparison adds no rounding
/// of its own. The step is scaled per entry (h = step · max(1, |x|)) and
/// errors are *relative*: |analytic − numeric| / max(1, |analytic|,
/// |numeric|), compared against a per-op tolerance.
///
/// Mask-freezing trick (stochastic ops): Dropout draws its mask from an
/// explicitly seeded Rng, so a registry entry makes the op deterministic by
/// constructing a fresh `Rng(fixed_seed)` *inside* the forward closure —
/// every finite-difference evaluation then re-samples the identical mask.
/// Equivalently, precompute the mask once with `DropoutMask` and apply it
/// via `DropoutWithMask`; the registry checks both paths.
///
/// Non-smooth points: Relu/LeakyRelu kink at 0, where the two-sided
/// quotient straddles the kink and disagrees with either one-sided
/// derivative. Registry inputs for those ops are pushed away from zero by
/// a margin larger than the step (see AwayFromZero).
struct GradcheckOptions {
  /// Maximum allowed relative error over all checked entries.
  double tolerance = 2e-2;
  /// Base finite-difference step (scaled by max(1, |x|) per entry).
  double step = 1e-2;
  /// If > 0, check at most this many entries per input (sampled
  /// deterministically from `seed`); 0 checks every entry. Use for
  /// composed whole-model checks where exhaustive FD is O(params²).
  int64_t max_entries_per_input = 0;
  /// Seeds the loss-weighting matrix and the entry sampler.
  uint64_t seed = 0x5eedf00dULL;
};

struct GradcheckReport {
  std::string name;
  bool ok = false;
  double max_rel_error = 0.0;
  int64_t entries_checked = 0;
  /// Where the largest error occurred (or why the check failed outright).
  std::string worst;

  std::string Summary() const;
};

/// Rebuilds the loss (1x1, differentiable) from the *current* values of
/// the captured leaf parameters; called once per finite-difference probe.
using LossFn = std::function<Variable()>;

/// Core driver: checks d(loss)/d(param) for every entry (or a sample) of
/// every param against central differences. `loss` must rebuild the graph
/// on each call and be deterministic given the parameter values (freeze
/// dropout masks as documented above).
GradcheckReport CheckGradients(const std::string& name, const LossFn& loss,
                               const std::vector<Variable>& params,
                               const GradcheckOptions& options = {});

/// One registry entry: an op under test, exercised through a forward
/// builder over fresh Parameters of the given input values. The output may
/// be any shape; the harness contracts it to a scalar with a fixed random
/// weighting (loss = Σ W ⊙ out) so gradients are direction-dependent.
struct GradcheckCase {
  std::string name;  ///< must match the autograd.h declaration (lint rule)
  std::vector<Matrix> inputs;
  std::function<Variable(const std::vector<Variable>& inputs)> forward;
  GradcheckOptions options;
};

/// Runs one registry case end to end.
GradcheckReport RunGradcheck(const GradcheckCase& c);

/// The op registry: one case per Variable-returning op declared in
/// src/tensor/autograd.h. tools/lint.py (rule `gradcheck-registry`)
/// cross-references the two files, so declaring a new op without adding a
/// case here fails `ctest -R lint`.
std::vector<GradcheckCase> OpGradcheckRegistry();

/// Shifts every entry of `m` away from zero by `margin` (sign-preserving,
/// sign(0) treated as +). Used to keep Relu/LeakyRelu inputs off their
/// non-smooth point by more than the finite-difference step.
Matrix AwayFromZero(Matrix m, float margin);

}  // namespace ag
}  // namespace adpa
