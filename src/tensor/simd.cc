#include "src/tensor/simd.h"

#include <atomic>
#include <cstdlib>
#include <mutex>  // lint:allow(mutex-annotations) — std::call_once only, no locking

#include "src/core/logging.h"
#include "src/tensor/simd_kernels.h"

namespace adpa::simd {
namespace {

bool CpuSupports(Level level) {
  switch (level) {
    case Level::kPortable:
      return true;
#if defined(__x86_64__) || defined(_M_X64)
    case Level::kAvx2:
      return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
    case Level::kAvx512:
      return __builtin_cpu_supports("avx2") &&
             __builtin_cpu_supports("fma") &&
             __builtin_cpu_supports("avx512f");
#else
    case Level::kAvx2:
    case Level::kAvx512:
      return false;
#endif
  }
  return false;
}

Level HighestSupported() {
  if (CpuSupports(Level::kAvx512)) return Level::kAvx512;
  if (CpuSupports(Level::kAvx2)) return Level::kAvx2;
  return Level::kPortable;
}

// Resolves the startup level once: an explicit ADPA_SIMD_LEVEL request wins
// (and must be valid — a typo or an unsupported level aborts instead of
// silently degrading a benchmark or a parity run), otherwise the highest
// level this CPU can execute.
Level ResolveStartupLevel() {
  const char* env = std::getenv("ADPA_SIMD_LEVEL");
  if (env != nullptr && env[0] != '\0') {
    Level requested;
    ADPA_CHECK(ParseLevel(env, &requested))
        << "ADPA_SIMD_LEVEL=" << env
        << " is not a dispatch level (portable|avx2|avx512)";
    ADPA_CHECK(CpuSupports(requested))
        << "ADPA_SIMD_LEVEL=" << env << " is not supported by this CPU";
    return requested;
  }
  return HighestSupported();
}

std::atomic<Level>& ActiveLevelState() {
  static std::once_flag once;
  static std::atomic<Level> state{Level::kPortable};
  std::call_once(once, [] { state.store(ResolveStartupLevel()); });
  return state;
}

}  // namespace

const char* LevelName(Level level) {
  switch (level) {
    case Level::kPortable:
      return "portable";
    case Level::kAvx2:
      return "avx2";
    case Level::kAvx512:
      return "avx512";
  }
  return "unknown";
}

bool ParseLevel(const std::string& name, Level* out) {
  if (name == "portable") {
    *out = Level::kPortable;
  } else if (name == "avx2") {
    *out = Level::kAvx2;
  } else if (name == "avx512") {
    *out = Level::kAvx512;
  } else {
    return false;
  }
  return true;
}

bool LevelSupported(Level level) { return CpuSupports(level); }

std::vector<Level> SupportedLevels() {
  std::vector<Level> levels;
  for (Level level : {Level::kPortable, Level::kAvx2, Level::kAvx512}) {
    if (CpuSupports(level)) levels.push_back(level);
  }
  return levels;
}

Level ActiveLevel() { return ActiveLevelState().load(); }

void SetLevel(Level level) {
  ADPA_CHECK(CpuSupports(level))
      << "SIMD level " << LevelName(level) << " is not supported by this CPU";
  ActiveLevelState().store(level);
}

const KernelTable& Kernels() { return KernelsFor(ActiveLevel()); }

const KernelTable& KernelsFor(Level level) {
  ADPA_CHECK(CpuSupports(level))
      << "SIMD level " << LevelName(level) << " is not supported by this CPU";
  switch (level) {
    case Level::kPortable:
      return detail::kPortableTable;
    case Level::kAvx2:
      return detail::kAvx2Table;
    case Level::kAvx512:
      return detail::kAvx512Table;
  }
  return detail::kPortableTable;
}

}  // namespace adpa::simd
