#include "src/tensor/gradcheck.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <utility>

#include "src/core/random.h"
#include "src/graph/sparse_matrix.h"

namespace adpa {
namespace ag {

namespace {

Matrix RandomInput(int64_t rows, int64_t cols, uint64_t seed,
                   float stddev = 0.7f) {
  Rng rng(seed);
  return Matrix::RandomNormal(rows, cols, &rng, 0.0f, stddev);
}

/// Fixed random ± weighting used to contract a non-scalar op output to the
/// scalar the finite differences probe. Entries are bounded away from zero
/// so every output element participates in the loss.
Matrix LossWeights(int64_t rows, int64_t cols, uint64_t seed) {
  Rng rng(seed);
  Matrix w(rows, cols);
  for (int64_t i = 0; i < w.size(); ++i) {
    const double magnitude = rng.Uniform(0.5, 1.5);
    w.data()[i] = static_cast<float>(rng.Bernoulli(0.5) ? -magnitude
                                                        : magnitude);
  }
  return w;
}

}  // namespace

Matrix AwayFromZero(Matrix m, float margin) {
  m.ApplyFn([margin](float v) {
    return v < 0.0f ? v - margin : v + margin;
  });
  return m;
}

std::string GradcheckReport::Summary() const {
  std::ostringstream out;
  out << "gradcheck[" << name << "]: " << (ok ? "OK" : "FAIL") << ", "
      << entries_checked << " entries, max rel error " << max_rel_error;
  if (!worst.empty()) out << " (" << worst << ")";
  return out.str();
}

GradcheckReport CheckGradients(const std::string& name, const LossFn& loss,
                               const std::vector<Variable>& params,
                               const GradcheckOptions& options) {
  GradcheckReport report;
  report.name = name;

  Variable scalar = loss();
  if (scalar.rows() != 1 || scalar.cols() != 1) {
    report.worst = "loss is not 1x1";
    return report;
  }
  for (Variable param : params) param.ZeroGrad();  // copies alias the node
  Backward(scalar);

  report.ok = true;
  Rng sampler(options.seed ^ 0x517CC1B727220A95ULL);
  for (size_t k = 0; k < params.size(); ++k) {
    // Copy the analytic gradient before finite differences dirty anything.
    const Matrix analytic = params[k].grad();
    if (analytic.empty()) {
      report.ok = false;
      report.worst = "param " + std::to_string(k) + " received no gradient";
      continue;
    }
    Variable param = params[k];
    Matrix* value = param.mutable_value();

    std::vector<int64_t> entries;
    if (options.max_entries_per_input > 0 &&
        value->size() > options.max_entries_per_input) {
      entries = sampler.SampleWithoutReplacement(
          value->size(), options.max_entries_per_input);
      std::sort(entries.begin(), entries.end());
    } else {
      entries.resize(value->size());
      for (int64_t i = 0; i < value->size(); ++i) entries[i] = i;
    }

    for (int64_t i : entries) {
      const float original = value->data()[i];
      const double h =
          options.step * std::max(1.0, std::fabs(static_cast<double>(original)));
      // The probe points are rounded to float32 (the engine's precision);
      // the quotient uses the *realized* spacing, in double.
      const float up_x = static_cast<float>(original + h);
      const float down_x = static_cast<float>(original - h);
      value->data()[i] = up_x;
      const double up = static_cast<double>(loss().value().At(0, 0));
      value->data()[i] = down_x;
      const double down = static_cast<double>(loss().value().At(0, 0));
      value->data()[i] = original;
      const double spacing =
          static_cast<double>(up_x) - static_cast<double>(down_x);
      const double numeric = (up - down) / spacing;
      const double analytic_i = static_cast<double>(analytic.data()[i]);
      const double denom =
          std::max({1.0, std::fabs(analytic_i), std::fabs(numeric)});
      const double rel_error = std::fabs(analytic_i - numeric) / denom;
      ++report.entries_checked;
      if (rel_error > report.max_rel_error) {
        report.max_rel_error = rel_error;
        std::ostringstream where;
        where << "param " << k << " entry " << i << ": analytic "
              << analytic_i << " vs numeric " << numeric;
        report.worst = where.str();
      }
    }
  }
  report.ok = report.ok && report.max_rel_error <= options.tolerance;
  return report;
}

GradcheckReport RunGradcheck(const GradcheckCase& c) {
  std::vector<Variable> params;
  params.reserve(c.inputs.size());
  for (const Matrix& input : c.inputs) params.push_back(Parameter(input));

  // Shape the loss weighting after a probe forward pass.
  Variable probe = c.forward(params);
  const Matrix weights =
      LossWeights(probe.rows(), probe.cols(), c.options.seed);
  auto loss = [&c, &params, &weights]() {
    return SumAll(Mul(c.forward(params), Constant(weights)));
  };
  return CheckGradients(c.name, loss, params, c.options);
}

std::vector<GradcheckCase> OpGradcheckRegistry() {
  std::vector<GradcheckCase> cases;
  auto add = [&cases](const char* name, std::vector<Matrix> inputs,
                      std::function<Variable(const std::vector<Variable>&)>
                          forward) -> GradcheckCase& {
    GradcheckCase c;
    c.name = name;
    c.inputs = std::move(inputs);
    c.forward = std::move(forward);
    cases.push_back(std::move(c));
    return cases.back();
  };

  // Leaves. Parameter is checked directly; Constant is checked by mixing a
  // constant into a differentiable graph (its own gradient must not exist
  // and must not perturb the parameter's).
  add("Parameter", {RandomInput(3, 4, 101)},
      [](const std::vector<Variable>& in) { return in[0]; });
  {
    const Matrix offset = RandomInput(3, 4, 102);
    add("Constant", {RandomInput(3, 4, 103)},
        [offset](const std::vector<Variable>& in) {
          return Add(in[0], Constant(offset));
        });
  }

  // Elementwise binary ops.
  add("Add", {RandomInput(3, 4, 111), RandomInput(3, 4, 112)},
      [](const std::vector<Variable>& in) { return Add(in[0], in[1]); });
  add("Sub", {RandomInput(3, 4, 113), RandomInput(3, 4, 114)},
      [](const std::vector<Variable>& in) { return Sub(in[0], in[1]); });
  add("Mul", {RandomInput(3, 4, 115), RandomInput(3, 4, 116)},
      [](const std::vector<Variable>& in) { return Mul(in[0], in[1]); });
  add("Scale", {RandomInput(3, 4, 117)},
      [](const std::vector<Variable>& in) { return Scale(in[0], 1.7f); });

  // Matrix products.
  add("MatMul", {RandomInput(3, 4, 121), RandomInput(4, 5, 122)},
      [](const std::vector<Variable>& in) { return MatMul(in[0], in[1]); });
  add("MatMulTransposeA", {RandomInput(4, 3, 123), RandomInput(4, 5, 124)},
      [](const std::vector<Variable>& in) {
        return MatMulTransposeA(in[0], in[1]);
      });
  add("AddBias", {RandomInput(3, 4, 125), RandomInput(1, 4, 126)},
      [](const std::vector<Variable>& in) { return AddBias(in[0], in[1]); });
  {
    // A fixed 4x3 sparse operator with an empty row and an empty column,
    // so the Aᵀ-side of the backward is exercised on irregular structure.
    const SparseMatrix op = SparseMatrix::FromTriplets(
        4, 3,
        {{0, 0, 0.8f}, {0, 2, -1.2f}, {1, 1, 0.5f}, {3, 0, 1.5f},
         {3, 1, -0.4f}});
    add("SpMM", {RandomInput(3, 5, 127)},
        [op](const std::vector<Variable>& in) { return SpMM(op, in[0]); });
  }

  // Activations. Relu/LeakyRelu inputs are pushed away from the kink at 0
  // by 0.3 — far beyond the 1e-2-scaled step — so central differences
  // never straddle the non-smooth point.
  add("Relu", {AwayFromZero(RandomInput(3, 4, 131), 0.3f)},
      [](const std::vector<Variable>& in) { return Relu(in[0]); });
  add("LeakyRelu", {AwayFromZero(RandomInput(3, 4, 132), 0.3f)},
      [](const std::vector<Variable>& in) {
        return LeakyRelu(in[0], 0.2f);
      });
  add("Sigmoid", {RandomInput(3, 4, 133)},
      [](const std::vector<Variable>& in) { return Sigmoid(in[0]); });
  add("Tanh", {RandomInput(3, 4, 134)},
      [](const std::vector<Variable>& in) { return Tanh(in[0]); });

  // Dropout via the mask-freezing trick: a fresh Rng with a fixed seed is
  // constructed inside the forward closure, so every finite-difference
  // probe re-samples the identical mask (see gradcheck.h).
  add("Dropout", {RandomInput(3, 4, 135)},
      [](const std::vector<Variable>& in) {
        Rng mask_rng(0xD80);
        return Dropout(in[0], 0.4f, /*training=*/true, &mask_rng);
      });
  {
    Rng mask_rng(0xD81);
    const Matrix mask = DropoutMask(3, 4, 0.4f, &mask_rng);
    add("DropoutWithMask", {RandomInput(3, 4, 136)},
        [mask](const std::vector<Variable>& in) {
          return DropoutWithMask(in[0], mask);
        });
  }

  // Structural ops.
  add("ConcatCols", {RandomInput(3, 2, 141), RandomInput(3, 3, 142)},
      [](const std::vector<Variable>& in) {
        return ConcatCols({in[0], in[1]});
      });
  add("SliceCols", {RandomInput(3, 5, 143)},
      [](const std::vector<Variable>& in) {
        return SliceCols(in[0], 1, 4);
      });
  add("ScaleRows", {RandomInput(4, 3, 144), RandomInput(4, 1, 145)},
      [](const std::vector<Variable>& in) {
        return ScaleRows(in[0], in[1]);
      });
  add("ScaleScalar", {RandomInput(3, 4, 146), RandomInput(1, 1, 147)},
      [](const std::vector<Variable>& in) {
        return ScaleScalar(in[0], in[1]);
      });

  // Row-wise normalizations and reductions.
  add("SoftmaxRows", {RandomInput(3, 5, 151)},
      [](const std::vector<Variable>& in) { return SoftmaxRows(in[0]); });
  add("LogSoftmaxRows", {RandomInput(3, 5, 152)},
      [](const std::vector<Variable>& in) {
        return LogSoftmaxRows(in[0]);
      });
  add("SumAll", {RandomInput(3, 4, 153)},
      [](const std::vector<Variable>& in) { return SumAll(in[0]); });
  {
    const std::vector<int64_t> labels = {0, 1, 2, 3, 1};
    const std::vector<int64_t> mask_indices = {0, 2, 4};
    add("MaskedCrossEntropy", {RandomInput(5, 4, 154)},
        [labels, mask_indices](const std::vector<Variable>& in) {
          return MaskedCrossEntropy(in[0], labels, mask_indices);
        });
  }

  return cases;
}

}  // namespace ag
}  // namespace adpa
