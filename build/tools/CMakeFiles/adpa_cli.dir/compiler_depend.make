# Empty compiler generated dependencies file for adpa_cli.
# This may be replaced when dependencies are built.
