file(REMOVE_RECURSE
  "CMakeFiles/adpa_cli.dir/adpa_cli.cc.o"
  "CMakeFiles/adpa_cli.dir/adpa_cli.cc.o.d"
  "adpa_cli"
  "adpa_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adpa_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
