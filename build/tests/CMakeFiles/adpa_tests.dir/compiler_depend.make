# Empty compiler generated dependencies file for adpa_tests.
# This may be replaced when dependencies are built.
