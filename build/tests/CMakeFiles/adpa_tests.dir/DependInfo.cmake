
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/algorithms_test.cc" "tests/CMakeFiles/adpa_tests.dir/algorithms_test.cc.o" "gcc" "tests/CMakeFiles/adpa_tests.dir/algorithms_test.cc.o.d"
  "/root/repo/tests/amud_test.cc" "tests/CMakeFiles/adpa_tests.dir/amud_test.cc.o" "gcc" "tests/CMakeFiles/adpa_tests.dir/amud_test.cc.o.d"
  "/root/repo/tests/autograd_test.cc" "tests/CMakeFiles/adpa_tests.dir/autograd_test.cc.o" "gcc" "tests/CMakeFiles/adpa_tests.dir/autograd_test.cc.o.d"
  "/root/repo/tests/core_test.cc" "tests/CMakeFiles/adpa_tests.dir/core_test.cc.o" "gcc" "tests/CMakeFiles/adpa_tests.dir/core_test.cc.o.d"
  "/root/repo/tests/data_test.cc" "tests/CMakeFiles/adpa_tests.dir/data_test.cc.o" "gcc" "tests/CMakeFiles/adpa_tests.dir/data_test.cc.o.d"
  "/root/repo/tests/digraph_test.cc" "tests/CMakeFiles/adpa_tests.dir/digraph_test.cc.o" "gcc" "tests/CMakeFiles/adpa_tests.dir/digraph_test.cc.o.d"
  "/root/repo/tests/extensions_test.cc" "tests/CMakeFiles/adpa_tests.dir/extensions_test.cc.o" "gcc" "tests/CMakeFiles/adpa_tests.dir/extensions_test.cc.o.d"
  "/root/repo/tests/homophily_test.cc" "tests/CMakeFiles/adpa_tests.dir/homophily_test.cc.o" "gcc" "tests/CMakeFiles/adpa_tests.dir/homophily_test.cc.o.d"
  "/root/repo/tests/integration_test.cc" "tests/CMakeFiles/adpa_tests.dir/integration_test.cc.o" "gcc" "tests/CMakeFiles/adpa_tests.dir/integration_test.cc.o.d"
  "/root/repo/tests/io_test.cc" "tests/CMakeFiles/adpa_tests.dir/io_test.cc.o" "gcc" "tests/CMakeFiles/adpa_tests.dir/io_test.cc.o.d"
  "/root/repo/tests/matrix_test.cc" "tests/CMakeFiles/adpa_tests.dir/matrix_test.cc.o" "gcc" "tests/CMakeFiles/adpa_tests.dir/matrix_test.cc.o.d"
  "/root/repo/tests/model_semantics_test.cc" "tests/CMakeFiles/adpa_tests.dir/model_semantics_test.cc.o" "gcc" "tests/CMakeFiles/adpa_tests.dir/model_semantics_test.cc.o.d"
  "/root/repo/tests/models_test.cc" "tests/CMakeFiles/adpa_tests.dir/models_test.cc.o" "gcc" "tests/CMakeFiles/adpa_tests.dir/models_test.cc.o.d"
  "/root/repo/tests/nn_test.cc" "tests/CMakeFiles/adpa_tests.dir/nn_test.cc.o" "gcc" "tests/CMakeFiles/adpa_tests.dir/nn_test.cc.o.d"
  "/root/repo/tests/sparse_test.cc" "tests/CMakeFiles/adpa_tests.dir/sparse_test.cc.o" "gcc" "tests/CMakeFiles/adpa_tests.dir/sparse_test.cc.o.d"
  "/root/repo/tests/trainer_test.cc" "tests/CMakeFiles/adpa_tests.dir/trainer_test.cc.o" "gcc" "tests/CMakeFiles/adpa_tests.dir/trainer_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/adpa_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
