file(REMOVE_RECURSE
  "libadpa_core.a"
)
