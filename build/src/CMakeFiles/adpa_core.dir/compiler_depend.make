# Empty compiler generated dependencies file for adpa_core.
# This may be replaced when dependencies are built.
