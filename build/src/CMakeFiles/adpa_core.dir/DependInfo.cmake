
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/amud/amud.cc" "src/CMakeFiles/adpa_core.dir/amud/amud.cc.o" "gcc" "src/CMakeFiles/adpa_core.dir/amud/amud.cc.o.d"
  "/root/repo/src/core/flags.cc" "src/CMakeFiles/adpa_core.dir/core/flags.cc.o" "gcc" "src/CMakeFiles/adpa_core.dir/core/flags.cc.o.d"
  "/root/repo/src/core/logging.cc" "src/CMakeFiles/adpa_core.dir/core/logging.cc.o" "gcc" "src/CMakeFiles/adpa_core.dir/core/logging.cc.o.d"
  "/root/repo/src/core/random.cc" "src/CMakeFiles/adpa_core.dir/core/random.cc.o" "gcc" "src/CMakeFiles/adpa_core.dir/core/random.cc.o.d"
  "/root/repo/src/core/status.cc" "src/CMakeFiles/adpa_core.dir/core/status.cc.o" "gcc" "src/CMakeFiles/adpa_core.dir/core/status.cc.o.d"
  "/root/repo/src/core/strings.cc" "src/CMakeFiles/adpa_core.dir/core/strings.cc.o" "gcc" "src/CMakeFiles/adpa_core.dir/core/strings.cc.o.d"
  "/root/repo/src/data/benchmarks.cc" "src/CMakeFiles/adpa_core.dir/data/benchmarks.cc.o" "gcc" "src/CMakeFiles/adpa_core.dir/data/benchmarks.cc.o.d"
  "/root/repo/src/data/dataset.cc" "src/CMakeFiles/adpa_core.dir/data/dataset.cc.o" "gcc" "src/CMakeFiles/adpa_core.dir/data/dataset.cc.o.d"
  "/root/repo/src/data/generators.cc" "src/CMakeFiles/adpa_core.dir/data/generators.cc.o" "gcc" "src/CMakeFiles/adpa_core.dir/data/generators.cc.o.d"
  "/root/repo/src/data/io.cc" "src/CMakeFiles/adpa_core.dir/data/io.cc.o" "gcc" "src/CMakeFiles/adpa_core.dir/data/io.cc.o.d"
  "/root/repo/src/data/sparsity.cc" "src/CMakeFiles/adpa_core.dir/data/sparsity.cc.o" "gcc" "src/CMakeFiles/adpa_core.dir/data/sparsity.cc.o.d"
  "/root/repo/src/data/splits.cc" "src/CMakeFiles/adpa_core.dir/data/splits.cc.o" "gcc" "src/CMakeFiles/adpa_core.dir/data/splits.cc.o.d"
  "/root/repo/src/graph/algorithms.cc" "src/CMakeFiles/adpa_core.dir/graph/algorithms.cc.o" "gcc" "src/CMakeFiles/adpa_core.dir/graph/algorithms.cc.o.d"
  "/root/repo/src/graph/digraph.cc" "src/CMakeFiles/adpa_core.dir/graph/digraph.cc.o" "gcc" "src/CMakeFiles/adpa_core.dir/graph/digraph.cc.o.d"
  "/root/repo/src/graph/patterns.cc" "src/CMakeFiles/adpa_core.dir/graph/patterns.cc.o" "gcc" "src/CMakeFiles/adpa_core.dir/graph/patterns.cc.o.d"
  "/root/repo/src/graph/sparse_matrix.cc" "src/CMakeFiles/adpa_core.dir/graph/sparse_matrix.cc.o" "gcc" "src/CMakeFiles/adpa_core.dir/graph/sparse_matrix.cc.o.d"
  "/root/repo/src/metrics/homophily.cc" "src/CMakeFiles/adpa_core.dir/metrics/homophily.cc.o" "gcc" "src/CMakeFiles/adpa_core.dir/metrics/homophily.cc.o.d"
  "/root/repo/src/models/adpa.cc" "src/CMakeFiles/adpa_core.dir/models/adpa.cc.o" "gcc" "src/CMakeFiles/adpa_core.dir/models/adpa.cc.o.d"
  "/root/repo/src/models/directed.cc" "src/CMakeFiles/adpa_core.dir/models/directed.cc.o" "gcc" "src/CMakeFiles/adpa_core.dir/models/directed.cc.o.d"
  "/root/repo/src/models/extended.cc" "src/CMakeFiles/adpa_core.dir/models/extended.cc.o" "gcc" "src/CMakeFiles/adpa_core.dir/models/extended.cc.o.d"
  "/root/repo/src/models/factory.cc" "src/CMakeFiles/adpa_core.dir/models/factory.cc.o" "gcc" "src/CMakeFiles/adpa_core.dir/models/factory.cc.o.d"
  "/root/repo/src/models/label_propagation.cc" "src/CMakeFiles/adpa_core.dir/models/label_propagation.cc.o" "gcc" "src/CMakeFiles/adpa_core.dir/models/label_propagation.cc.o.d"
  "/root/repo/src/models/undirected.cc" "src/CMakeFiles/adpa_core.dir/models/undirected.cc.o" "gcc" "src/CMakeFiles/adpa_core.dir/models/undirected.cc.o.d"
  "/root/repo/src/tensor/autograd.cc" "src/CMakeFiles/adpa_core.dir/tensor/autograd.cc.o" "gcc" "src/CMakeFiles/adpa_core.dir/tensor/autograd.cc.o.d"
  "/root/repo/src/tensor/matrix.cc" "src/CMakeFiles/adpa_core.dir/tensor/matrix.cc.o" "gcc" "src/CMakeFiles/adpa_core.dir/tensor/matrix.cc.o.d"
  "/root/repo/src/tensor/nn.cc" "src/CMakeFiles/adpa_core.dir/tensor/nn.cc.o" "gcc" "src/CMakeFiles/adpa_core.dir/tensor/nn.cc.o.d"
  "/root/repo/src/tensor/optimizer.cc" "src/CMakeFiles/adpa_core.dir/tensor/optimizer.cc.o" "gcc" "src/CMakeFiles/adpa_core.dir/tensor/optimizer.cc.o.d"
  "/root/repo/src/train/experiment.cc" "src/CMakeFiles/adpa_core.dir/train/experiment.cc.o" "gcc" "src/CMakeFiles/adpa_core.dir/train/experiment.cc.o.d"
  "/root/repo/src/train/grid_search.cc" "src/CMakeFiles/adpa_core.dir/train/grid_search.cc.o" "gcc" "src/CMakeFiles/adpa_core.dir/train/grid_search.cc.o.d"
  "/root/repo/src/train/trainer.cc" "src/CMakeFiles/adpa_core.dir/train/trainer.cc.o" "gcc" "src/CMakeFiles/adpa_core.dir/train/trainer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
