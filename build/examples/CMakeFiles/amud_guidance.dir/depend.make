# Empty dependencies file for amud_guidance.
# This may be replaced when dependencies are built.
