file(REMOVE_RECURSE
  "CMakeFiles/amud_guidance.dir/amud_guidance.cc.o"
  "CMakeFiles/amud_guidance.dir/amud_guidance.cc.o.d"
  "amud_guidance"
  "amud_guidance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amud_guidance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
