file(REMOVE_RECURSE
  "CMakeFiles/sparse_robustness.dir/sparse_robustness.cc.o"
  "CMakeFiles/sparse_robustness.dir/sparse_robustness.cc.o.d"
  "sparse_robustness"
  "sparse_robustness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparse_robustness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
