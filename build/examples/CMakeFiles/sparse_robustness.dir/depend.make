# Empty dependencies file for sparse_robustness.
# This may be replaced when dependencies are built.
