# Empty compiler generated dependencies file for citation_homophily.
# This may be replaced when dependencies are built.
