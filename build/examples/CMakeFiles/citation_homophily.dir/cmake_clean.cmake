file(REMOVE_RECURSE
  "CMakeFiles/citation_homophily.dir/citation_homophily.cc.o"
  "CMakeFiles/citation_homophily.dir/citation_homophily.cc.o.d"
  "citation_homophily"
  "citation_homophily.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/citation_homophily.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
