# Empty dependencies file for webkb_heterophily.
# This may be replaced when dependencies are built.
