file(REMOVE_RECURSE
  "CMakeFiles/webkb_heterophily.dir/webkb_heterophily.cc.o"
  "CMakeFiles/webkb_heterophily.dir/webkb_heterophily.cc.o.d"
  "webkb_heterophily"
  "webkb_heterophily.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/webkb_heterophily.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
