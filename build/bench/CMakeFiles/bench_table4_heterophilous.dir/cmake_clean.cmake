file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_heterophilous.dir/bench_table4_heterophilous.cc.o"
  "CMakeFiles/bench_table4_heterophilous.dir/bench_table4_heterophilous.cc.o.d"
  "bench_table4_heterophilous"
  "bench_table4_heterophilous.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_heterophilous.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
