file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_homophily.dir/bench_table1_homophily.cc.o"
  "CMakeFiles/bench_table1_homophily.dir/bench_table1_homophily.cc.o.d"
  "bench_table1_homophily"
  "bench_table1_homophily.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_homophily.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
