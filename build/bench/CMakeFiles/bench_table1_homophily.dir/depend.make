# Empty dependencies file for bench_table1_homophily.
# This may be replaced when dependencies are built.
