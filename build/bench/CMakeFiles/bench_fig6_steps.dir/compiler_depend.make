# Empty compiler generated dependencies file for bench_fig6_steps.
# This may be replaced when dependencies are built.
