file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_steps.dir/bench_fig6_steps.cc.o"
  "CMakeFiles/bench_fig6_steps.dir/bench_fig6_steps.cc.o.d"
  "bench_fig6_steps"
  "bench_fig6_steps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_steps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
