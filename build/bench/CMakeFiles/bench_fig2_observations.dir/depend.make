# Empty dependencies file for bench_fig2_observations.
# This may be replaced when dependencies are built.
