file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_observations.dir/bench_fig2_observations.cc.o"
  "CMakeFiles/bench_fig2_observations.dir/bench_fig2_observations.cc.o.d"
  "bench_fig2_observations"
  "bench_fig2_observations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_observations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
