# Empty dependencies file for bench_fig7_sparsity.
# This may be replaced when dependencies are built.
