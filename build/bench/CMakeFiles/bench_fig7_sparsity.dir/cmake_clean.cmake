file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_sparsity.dir/bench_fig7_sparsity.cc.o"
  "CMakeFiles/bench_fig7_sparsity.dir/bench_fig7_sparsity.cc.o.d"
  "bench_fig7_sparsity"
  "bench_fig7_sparsity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_sparsity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
