file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_korder.dir/bench_table6_korder.cc.o"
  "CMakeFiles/bench_table6_korder.dir/bench_table6_korder.cc.o.d"
  "bench_table6_korder"
  "bench_table6_korder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_korder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
