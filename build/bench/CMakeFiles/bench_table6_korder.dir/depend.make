# Empty dependencies file for bench_table6_korder.
# This may be replaced when dependencies are built.
