file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_homophilous.dir/bench_table3_homophilous.cc.o"
  "CMakeFiles/bench_table3_homophilous.dir/bench_table3_homophilous.cc.o.d"
  "bench_table3_homophilous"
  "bench_table3_homophilous.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_homophilous.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
