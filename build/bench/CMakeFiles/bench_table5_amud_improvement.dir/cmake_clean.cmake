file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_amud_improvement.dir/bench_table5_amud_improvement.cc.o"
  "CMakeFiles/bench_table5_amud_improvement.dir/bench_table5_amud_improvement.cc.o.d"
  "bench_table5_amud_improvement"
  "bench_table5_amud_improvement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_amud_improvement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
