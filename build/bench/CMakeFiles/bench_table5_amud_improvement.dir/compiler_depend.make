# Empty compiler generated dependencies file for bench_table5_amud_improvement.
# This may be replaced when dependencies are built.
