# Empty dependencies file for bench_table7_attention.
# This may be replaced when dependencies are built.
