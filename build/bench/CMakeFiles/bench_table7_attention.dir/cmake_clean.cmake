file(REMOVE_RECURSE
  "CMakeFiles/bench_table7_attention.dir/bench_table7_attention.cc.o"
  "CMakeFiles/bench_table7_attention.dir/bench_table7_attention.cc.o.d"
  "bench_table7_attention"
  "bench_table7_attention.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_attention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
